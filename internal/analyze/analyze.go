// Package analyze turns a raw trace event stream into attributed causal
// reports: it rebuilds the causal DAG from the Seq/Cause edges the engine
// threads through every event, extracts the critical path that bounds the
// makespan, and attributes every second of it to one blame category — the
// machine-checkable form of the paper's claim that network time, not
// compute, dominates large-graph jobs on uneven topologies (§6).
//
// Everything here is a pure function of the event stream (plus the topology
// header for the link report), so reports inherit the engine's determinism
// contract: byte-identical output for every worker count.
package analyze

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/trace"
)

// Blame categories: every second of makespan lands in exactly one.
const (
	// CatCompute is task busy time on the path (compute + local disk).
	CatCompute = "compute"
	// CatNIC is transfer wire time plus egress-bound queueing delay.
	CatNIC = "nic-serialization"
	// CatIncast is transfer queueing delay where the receiver's ingress NIC
	// was the binding constraint.
	CatIncast = "incast-stall"
	// CatRetry is fault-model delay: failure→heartbeat→retry gaps, dropped
	// transfers' wasted NIC holds and backoff waits.
	CatRetry = "retry-backoff"
	// CatBarrier is time waiting at a stage barrier for an off-path
	// straggler: gaps the causal chain cannot explain with work or faults.
	CatBarrier = "barrier-skew"
	// CatCheckpoint is path time spent inside ckpt-*/restore-* jobs.
	CatCheckpoint = "checkpoint-io"
	// CatQueued is multi-tenant scheduling delay on the path: time a job
	// spent waiting in the submission queue before admission, or suspended
	// between a preemption and its resume.
	CatQueued = "queued-preempted"
	// CatMigration is elasticity cost on the path: live partition-migration
	// wire time and queueing, and waits bound by drain/join events.
	CatMigration = "migration"
)

// Categories lists every blame category in report order.
var Categories = []string{CatCompute, CatNIC, CatIncast, CatRetry, CatBarrier, CatCheckpoint, CatQueued, CatMigration}

// PathStep is one event on the critical path, with the seconds the walk
// attributed while consuming it (its own span pieces plus the gap to its
// effect).
type PathStep struct {
	Seq     int     `json:"seq"`
	Kind    string  `json:"kind"`
	Job     string  `json:"job,omitempty"`
	Stage   string  `json:"stage,omitempty"`
	Name    string  `json:"name,omitempty"`
	Machine int     `json:"machine"`
	Time    float64 `json:"time"`
	Seconds float64 `json:"seconds"`
}

// StageBlame is the per-stage blame row. Label is "job/stage" ("job" alone
// for job-level events), with a "#k" occurrence suffix on the job when the
// same job name runs more than once in the stream.
type StageBlame struct {
	Label   string             `json:"label"`
	Seconds map[string]float64 `json:"seconds"`
	Total   float64            `json:"total"`
	// first is the smallest event Seq that contributed, for chronological
	// ordering of the report rows.
	first int
}

// Report is the full analysis of one trace.
type Report struct {
	// Makespan is last job-end minus first job-begin, in virtual seconds.
	Makespan float64 `json:"makespan"`
	// Blame attributes the whole makespan: the values sum to Makespan
	// (within float tolerance; pinned by test).
	Blame map[string]float64 `json:"blame"`
	// Stages are the per-stage blame rows in chronological order.
	Stages []*StageBlame `json:"stages"`
	// Path is the critical path in chronological order.
	Path []PathStep `json:"path"`
	// MachineCompute is each machine's total task busy seconds across the
	// whole stream (not just the path), for machine-level diffing.
	MachineCompute []float64 `json:"machine_compute"`
	// Links is the per-link / per-bisection-level utilization report; nil
	// when the trace carries no topology header.
	Links *LinkReport `json:"links,omitempty"`
}

// Analyze validates the stream's causal envelope, walks the critical path
// and builds the full report. topo may be nil (no link report then).
func Analyze(events []trace.Event, topo *cluster.Topology) (*Report, error) {
	if err := validate(events); err != nil {
		return nil, err
	}
	last := -1
	root := -1
	for i := range events {
		if events[i].Kind == trace.KindJobEnd {
			last = i
		}
		if root < 0 && events[i].Kind == trace.KindJobBegin {
			root = i
		}
	}
	if last < 0 || root < 0 {
		return nil, fmt.Errorf("analyze: trace contains no completed job")
	}
	labels := stageLabels(events)
	ckpt := checkpointJobs(events)

	rep := &Report{
		Makespan: events[last].Time - events[root].Time,
		Blame:    make(map[string]float64, len(Categories)),
	}
	for _, c := range Categories {
		rep.Blame[c] = 0
	}
	rows := make(map[string]*StageBlame)
	add := func(label, cat string, secs float64, seq int) {
		if secs <= 0 {
			return
		}
		rep.Blame[cat] += secs
		row := rows[label]
		if row == nil {
			row = &StageBlame{Label: label, Seconds: make(map[string]float64), first: seq}
			rows[label] = row
		}
		if seq < row.first {
			row.first = seq
		}
		row.Seconds[cat] += secs
		row.Total += secs
	}

	// Backward walk: t is the frontier — everything in [t, makespan end] is
	// already attributed. Each step consumes the gap from the current
	// event's upper edge to t, then the event's own span pieces. Cause <
	// Seq strictly, so the walk terminates at the root job-begin.
	t := events[last].Time
	cur := last
	child := -1
	var rpath []PathStep
	for {
		ev := &events[cur]
		stepStart := t
		pieces := spanPieces(ev, ckpt[ev.Job])
		hi := ev.Time
		for _, p := range pieces {
			if p.hi > hi {
				hi = p.hi
			}
		}
		if hi < t {
			// The gap between this event and its effect: who was waited on?
			cat := gapCategory(ev, eventAt(events, child), ckpt)
			label := labels[cur]
			if child >= 0 && labels[child] != "" {
				label = labels[child]
			}
			add(label, cat, t-hi, ev.Seq)
			t = hi
		}
		for _, p := range pieces {
			phi := p.hi
			if phi > t {
				phi = t
			}
			if p.lo < phi {
				add(labels[cur], p.cat, phi-p.lo, ev.Seq)
			}
			if p.lo < t {
				t = p.lo
			}
		}
		rpath = append(rpath, PathStep{
			Seq: ev.Seq, Kind: ev.Kind.String(), Job: ev.Job, Stage: ev.Stage,
			Name: ev.Name, Machine: ev.Machine, Time: ev.Time, Seconds: stepStart - t,
		})
		if ev.Cause == trace.None {
			break
		}
		child = cur
		cur = ev.Cause
	}
	// Safety net: a frontier left above the trace start (a malformed chain
	// would cause it; engine streams never do) is barrier skew, keeping the
	// 100%-attribution invariant unconditional.
	if t > events[root].Time {
		add(labels[root], CatBarrier, t-events[root].Time, events[root].Seq)
	}

	// Path was collected backward; report it forward.
	rep.Path = make([]PathStep, len(rpath))
	for i := range rpath {
		rep.Path[len(rpath)-1-i] = rpath[i]
	}
	rep.Stages = sortRows(rows)
	rep.MachineCompute = machineCompute(events)
	if topo != nil {
		rep.Links = linkReport(events, topo, events[root].Time, events[last].Time)
	}
	return rep, nil
}

// validate checks the causal envelope Analyze depends on.
func validate(events []trace.Event) error {
	for i := range events {
		if events[i].Seq != i {
			return fmt.Errorf("analyze: event %d carries seq %d; stream is reordered or truncated", i, events[i].Seq)
		}
		if events[i].Cause < trace.None || events[i].Cause >= i {
			return fmt.Errorf("analyze: event %d has acausal cause %d", i, events[i].Cause)
		}
	}
	return nil
}

func eventAt(events []trace.Event, i int) *trace.Event {
	if i < 0 {
		return nil
	}
	return &events[i]
}

// piece is one attributable sub-interval of an event's span.
type piece struct {
	lo, hi float64
	cat    string
}

// spanPieces returns an event's attributable intervals, highest first.
// Instant events (markers, failures, retries) own no interval — the walk
// attributes the gaps around them instead.
func spanPieces(ev *trace.Event, inCkptJob bool) []piece {
	reclass := func(cat string) string {
		if inCkptJob {
			return CatCheckpoint
		}
		return cat
	}
	switch ev.Kind {
	case trace.KindTaskEnd:
		return []piece{{lo: ev.Start, hi: ev.End, cat: reclass(CatCompute)}}
	case trace.KindTransfer:
		stall := CatNIC
		if ev.Incast {
			stall = CatIncast
		}
		return []piece{
			{lo: ev.Start, hi: ev.End, cat: reclass(CatNIC)},
			{lo: ev.Time, hi: ev.Start, cat: reclass(stall)},
		}
	case trace.KindTransferDrop:
		// The wasted NIC hold until the sender's timeout is fault cost; the
		// queueing before the doomed attempt is ordinary serialization.
		return []piece{
			{lo: ev.Start, hi: ev.End, cat: CatRetry},
			{lo: ev.Time, hi: ev.Start, cat: reclass(CatNIC)},
		}
	case trace.KindPartitionMigrate:
		// A live migration's wire time and its NIC queueing are both
		// elasticity cost — the drain, not the application, moved the bytes.
		return []piece{
			{lo: ev.Start, hi: ev.End, cat: CatMigration},
			{lo: ev.Time, hi: ev.Start, cat: CatMigration},
		}
	default:
		return nil
	}
}

// gapCategory classifies the wait between parent's upper edge and its
// effect child. Fault machinery (heartbeat detection, backoff timers,
// exogenous failures) is retry-backoff; checkpoint-job internals are
// checkpoint I/O; everything else is waiting on an off-path straggler at a
// barrier.
func gapCategory(parent, child *trace.Event, ckpt map[string]bool) string {
	if parent.Kind == trace.KindFailure || parent.Kind == trace.KindTransferDrop {
		return CatRetry
	}
	if parent.Kind == trace.KindMachineDrain || parent.Kind == trace.KindMachineJoin ||
		parent.Kind == trace.KindPartitionMigrate {
		return CatMigration
	}
	if child != nil {
		switch child.Kind {
		case trace.KindFailure, trace.KindRetry, trace.KindTransferRetry:
			return CatRetry
		case trace.KindMachineJoin, trace.KindMachineDrain, trace.KindPartitionMigrate:
			// The wait ended with an elastic membership event: the path was
			// held by the drain/join machinery, not application work.
			return CatMigration
		case trace.KindJobQueued, trace.KindJobAdmitted, trace.KindJobPreempted,
			trace.KindJobResumed, trace.KindJobRejected:
			// The wait ended with a scheduler decision: the job was queued
			// (submit → admit) or suspended (preempt → resume) meanwhile.
			return CatQueued
		}
	}
	switch parent.Kind {
	case trace.KindJobQueued, trace.KindJobAdmitted, trace.KindJobPreempted,
		trace.KindJobResumed:
		// The wait started at a scheduler event: the job sat in the queue
		// (or preempted) until its effect fired.
		return CatQueued
	}
	if ckpt[parent.Job] {
		return CatCheckpoint
	}
	return CatBarrier
}

// checkpointJobs collects the engine-job names the checkpoint/restore marks
// reference ("ckpt-002", "restore-002"): path time inside them is
// checkpoint I/O, not application work.
func checkpointJobs(events []trace.Event) map[string]bool {
	out := make(map[string]bool)
	for i := range events {
		switch events[i].Kind {
		case trace.KindCheckpoint, trace.KindRestore:
			out[events[i].Job] = true
		}
	}
	return out
}

// stageLabels computes each event's enclosing "job/stage" row label, with a
// "#k" suffix on job names that occur more than once (repeated `mapreduce`
// submissions stay distinguishable: "mapreduce#2/map").
func stageLabels(events []trace.Event) []string {
	// First pass: how often does each job name begin?
	begins := make(map[string]int)
	for i := range events {
		if events[i].Kind == trace.KindJobBegin {
			begins[events[i].Job]++
		}
	}
	labels := make([]string, len(events))
	seen := make(map[string]int)
	// alias maps a job name to its current occurrence label. Labeling is
	// driven by each event's own Job/Stage fields — never by "the job that
	// last began" — because a multi-tenant stream interleaves events of
	// concurrent jobs arbitrarily.
	alias := make(map[string]string)
	for i := range events {
		ev := &events[i]
		if ev.Kind == trace.KindJobBegin {
			seen[ev.Job]++
			if begins[ev.Job] > 1 {
				alias[ev.Job] = fmt.Sprintf("%s#%d", ev.Job, seen[ev.Job])
			} else {
				alias[ev.Job] = ev.Job
			}
		}
		if ev.Job == "" {
			labels[i] = ""
			continue
		}
		job, ok := alias[ev.Job]
		if !ok {
			// Scheduler events (queued/admitted/rejected) may precede the
			// job's first begin, or the job may never begin at all.
			job = ev.Job
		}
		if ev.Stage == "" {
			labels[i] = job
		} else {
			labels[i] = job + "/" + ev.Stage
		}
	}
	return labels
}

// sortRows orders the blame rows chronologically (by first contributing
// event, Label as the tie-break). The previous insertion sort was stable,
// so rows sharing a first-Seq kept map iteration order — the explicit
// tie-break makes the order a pure function of the rows themselves.
func sortRows(rows map[string]*StageBlame) []*StageBlame {
	out := make([]*StageBlame, 0, len(rows))
	for _, r := range rows {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].first != out[j].first {
			return out[i].first < out[j].first
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// machineCompute sums task busy seconds per machine over the whole stream.
func machineCompute(events []trace.Event) []float64 {
	maxM := -1
	for i := range events {
		if events[i].Kind == trace.KindTaskEnd && events[i].Machine > maxM {
			maxM = events[i].Machine
		}
	}
	out := make([]float64, maxM+1)
	for i := range events {
		if events[i].Kind == trace.KindTaskEnd {
			out[events[i].Machine] += events[i].End - events[i].Start
		}
	}
	return out
}
