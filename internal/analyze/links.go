package analyze

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/trace"
)

// The link report aggregates every transfer in the stream (not just the
// critical path) per directed machine pair, then buckets pairs by their
// machine-graph bisection level: the depth of the recursive bisection
// (§4.2) at which the two machines first separate. Level 0 crosses the
// top-level cut — the scarcest bandwidth in the hierarchy — so a glance at
// the level rows shows whether traffic follows the bandwidth hierarchy the
// partitioner optimized for.

// timelineBuckets is the fixed resolution of per-level utilization
// timelines. Fixed (not adaptive) so reports of the same workload are
// comparable and byte-identical across runs.
const timelineBuckets = 16

// LinkStat aggregates one directed machine pair.
type LinkStat struct {
	Src          int     `json:"src"`
	Dst          int     `json:"dst"`
	Level        int     `json:"level"`
	Transfers    int     `json:"transfers"`
	Bytes        int64   `json:"bytes"`
	BusySeconds  float64 `json:"busy_seconds"`
	StallSeconds float64 `json:"stall_seconds"`
}

// LevelStat aggregates all links at one bisection level.
type LevelStat struct {
	Level       int     `json:"level"`
	Links       int     `json:"links"`
	Transfers   int     `json:"transfers"`
	Bytes       int64   `json:"bytes"`
	BusySeconds float64 `json:"busy_seconds"`
	// Timeline is transfer busy-seconds per fixed time bucket across the
	// makespan: the utilization timeline of this level of the hierarchy.
	Timeline []float64 `json:"timeline"`
}

// LinkReport is the per-link / per-level utilization view.
type LinkReport struct {
	Levels []LevelStat `json:"levels"`
	// Hot lists the busiest links (by busy seconds, then bytes, then pair),
	// at most five.
	Hot []LinkStat `json:"hot"`
	// all holds every link's stats (same sort as Hot, untruncated) for
	// diffing; kept out of the JSON to keep reports small.
	all []LinkStat
}

func linkReport(events []trace.Event, topo *cluster.Topology, start, end float64) *LinkReport {
	n := topo.NumMachines()
	lvl := cluster.BisectionLevels(topo)
	span := end - start
	width := span / timelineBuckets

	links := make(map[[2]int]*LinkStat)
	levels := make(map[int]*LevelStat)
	level := func(d int) *LevelStat {
		ls := levels[d]
		if ls == nil {
			ls = &LevelStat{Level: d, Timeline: make([]float64, timelineBuckets)}
			levels[d] = ls
		}
		return ls
	}
	for i := range events {
		ev := &events[i]
		// Migration traffic occupies the same NICs as application traffic,
		// so it counts toward link utilization too.
		if ev.Kind != trace.KindTransfer && ev.Kind != trace.KindPartitionMigrate {
			continue
		}
		if ev.Machine < 0 || ev.Dst < 0 || ev.Machine >= n || ev.Dst >= n {
			continue
		}
		key := [2]int{ev.Machine, ev.Dst}
		st := links[key]
		if st == nil {
			st = &LinkStat{Src: ev.Machine, Dst: ev.Dst, Level: lvl[ev.Machine][ev.Dst]}
			links[key] = st
		}
		st.Transfers++
		st.Bytes += ev.Bytes
		st.BusySeconds += ev.End - ev.Start
		st.StallSeconds += ev.Stall

		ls := level(st.Level)
		ls.Transfers++
		ls.Bytes += ev.Bytes
		ls.BusySeconds += ev.End - ev.Start
		if width > 0 {
			// Spread the busy interval over the buckets it overlaps.
			for b := 0; b < timelineBuckets; b++ {
				blo := start + float64(b)*width
				bhi := blo + width
				lo, hi := ev.Start, ev.End
				if lo < blo {
					lo = blo
				}
				if hi > bhi {
					hi = bhi
				}
				if lo < hi {
					ls.Timeline[b] += hi - lo
				}
			}
		}
	}

	rep := &LinkReport{}
	for _, ls := range levels {
		for _, st := range links {
			if st.Level == ls.Level {
				ls.Links++
			}
		}
		rep.Levels = append(rep.Levels, *ls)
	}
	sort.Slice(rep.Levels, func(i, j int) bool { return rep.Levels[i].Level < rep.Levels[j].Level })

	all := make([]LinkStat, 0, len(links))
	for _, st := range links {
		all = append(all, *st)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.BusySeconds != b.BusySeconds {
			return a.BusySeconds > b.BusySeconds
		}
		if a.Bytes != b.Bytes {
			return a.Bytes > b.Bytes
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
	rep.all = all
	rep.Hot = all
	if len(rep.Hot) > 5 {
		rep.Hot = rep.Hot[:5]
	}
	return rep
}
