package analyze

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/storage"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// t3Run executes the analyzer's acceptance workload — the same traced T3
// PageRank the observability layer pins (trace_test.go) — and returns the
// raw event stream plus the topology. withFaults injects a seeded schedule
// of transient link faults so the retry machinery exercises the causal
// edges too.
func t3Run(t *testing.T, workers int, withFaults bool) ([]trace.Event, *cluster.Topology) {
	t.Helper()
	g := graph.Social(graph.DefaultSocial(2048, 7))
	topo := cluster.NewT3(8, 7)
	pt, sk := partition.RecursiveBisect(g, 2, partition.Options{Seed: 7})
	pg, err := storage.Build(g, pt)
	if err != nil {
		t.Fatal(err)
	}
	pl := partition.SketchPlacement(sk, topo)
	rec := trace.NewRecorder()
	cfg := engine.Config{Topo: topo, Workers: workers, Trace: rec}
	if withFaults {
		// Horizon ≈ the fault-free makespan so the windows overlap real
		// transfers; drops are the interesting case (timeout + backoff).
		sched, _ := fault.Generate(fault.GenConfig{
			Machines: 8, Horizon: 0.004, Degrades: 2, Drops: 2, Slowdowns: 1, Seed: 2,
		})
		if err := sched.Validate(8); err != nil {
			t.Fatal(err)
		}
		cfg.Faults = sched
	}
	r := engine.New(cfg)
	app := apps.NewNR(3)
	if _, _, err := app.RunPropagation(r, pg, pl,
		propagation.Options{LocalPropagation: true, LocalCombination: true}); err != nil {
		t.Fatal(err)
	}
	return rec.Events(), topo
}

// TestBlameSumsToMakespan is the tentpole's acceptance criterion: on the T3
// workload the analyzer attributes 100% of the makespan — the blame
// categories sum to the makespan within float tolerance.
func TestBlameSumsToMakespan(t *testing.T) {
	for _, withFaults := range []bool{false, true} {
		events, topo := t3Run(t, 1, withFaults)
		r, err := Analyze(events, topo)
		if err != nil {
			t.Fatal(err)
		}
		if r.Makespan <= 0 {
			t.Fatalf("faults=%v: nonpositive makespan %v", withFaults, r.Makespan)
		}
		sum := 0.0
		for _, cat := range Categories {
			v, ok := r.Blame[cat]
			if !ok {
				t.Fatalf("faults=%v: category %s missing from blame map", withFaults, cat)
			}
			if v < 0 {
				t.Fatalf("faults=%v: negative blame %s=%v", withFaults, cat, v)
			}
			sum += v
		}
		if math.Abs(sum-r.Makespan) > 1e-9*math.Max(1, r.Makespan) {
			t.Fatalf("faults=%v: blame sums to %v, makespan %v (diff %g)",
				withFaults, sum, r.Makespan, sum-r.Makespan)
		}
		// Per-stage rows are a partition of the same total.
		stageSum := 0.0
		for _, row := range r.Stages {
			stageSum += row.Total
		}
		if math.Abs(stageSum-r.Makespan) > 1e-9*math.Max(1, r.Makespan) {
			t.Fatalf("faults=%v: stage rows sum to %v, makespan %v", withFaults, stageSum, r.Makespan)
		}
		if r.Blame[CatCompute] <= 0 {
			t.Fatalf("faults=%v: compute got no blame: %+v", withFaults, r.Blame)
		}
		if withFaults && r.Blame[CatRetry] <= 0 {
			t.Fatalf("fault run attributed nothing to retry-backoff: %+v", r.Blame)
		}
	}
}

// TestReportDeterminism pins the determinism contract end to end: the
// rendered critical-path report — text and JSON — is byte-identical for
// Workers 1, 4 and 8, with and without a seeded fault schedule.
func TestReportDeterminism(t *testing.T) {
	for _, withFaults := range []bool{false, true} {
		render := func(workers int) ([]byte, []byte) {
			events, topo := t3Run(t, workers, withFaults)
			r, err := Analyze(events, topo)
			if err != nil {
				t.Fatal(err)
			}
			var text, js bytes.Buffer
			if err := WriteText(&text, r); err != nil {
				t.Fatal(err)
			}
			if err := WriteJSON(&js, r); err != nil {
				t.Fatal(err)
			}
			return text.Bytes(), js.Bytes()
		}
		text1, js1 := render(1)
		for _, workers := range []int{4, 8} {
			textN, jsN := render(workers)
			if !bytes.Equal(text1, textN) {
				t.Fatalf("faults=%v: text report with Workers=%d differs from Workers=1", withFaults, workers)
			}
			if !bytes.Equal(js1, jsN) {
				t.Fatalf("faults=%v: JSON report with Workers=%d differs from Workers=1", withFaults, workers)
			}
		}
	}
}

// TestDiffIdentity: diffing a report against itself yields all-zero deltas,
// and the rendered diff is byte-identical across worker counts.
func TestDiffIdentity(t *testing.T) {
	events, topo := t3Run(t, 1, false)
	r, err := Analyze(events, topo)
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(r, r)
	if d.Delta != 0 {
		t.Fatalf("self-diff makespan delta %v", d.Delta)
	}
	for _, cd := range d.Categories {
		if cd.Delta != 0 {
			t.Fatalf("self-diff category %s delta %v", cd.Category, cd.Delta)
		}
	}
	for _, sd := range d.Stages {
		if sd.Delta != 0 || sd.Worst != "" {
			t.Fatalf("self-diff stage %s delta %v worst %q", sd.Label, sd.Delta, sd.Worst)
		}
	}

	renderDiff := func(workers int) []byte {
		events, topo := t3Run(t, workers, false)
		a, err := Analyze(events, topo)
		if err != nil {
			t.Fatal(err)
		}
		eventsF, topoF := t3Run(t, workers, true)
		b, err := Analyze(eventsF, topoF)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteDiffText(&buf, Diff(a, b)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	d1 := renderDiff(1)
	for _, workers := range []int{4, 8} {
		if !bytes.Equal(d1, renderDiff(workers)) {
			t.Fatalf("diff report with Workers=%d differs from Workers=1", workers)
		}
	}
	// The fault run is slower, and the slowdown lands on retry-backoff.
	eventsF, topoF := t3Run(t, 1, true)
	b, err := Analyze(eventsF, topoF)
	if err != nil {
		t.Fatal(err)
	}
	dd := Diff(r, b)
	if dd.Delta <= 0 {
		t.Fatalf("fault run not slower: delta %v", dd.Delta)
	}
}

// TestGoldenReport pins the exact text report of the bundled example
// workload (run with -update to regenerate after an intentional change).
func TestGoldenReport(t *testing.T) {
	events, topo := t3Run(t, 1, false)
	r, err := Analyze(events, topo)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, r); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "critical_path_t3.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("critical-path report drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestRoundTripThroughStream: analyzing a stream after a WriteEvents /
// ReadEvents round trip gives the identical report — the raw file format
// loses nothing the analyzer needs.
func TestRoundTripThroughStream(t *testing.T) {
	events, topo := t3Run(t, 1, true)
	direct, err := Analyze(events, topo)
	if err != nil {
		t.Fatal(err)
	}
	var file bytes.Buffer
	ti := &trace.TopoInfo{Name: topo.Name(), Machines: topo.NumMachines(), Bandwidth: topo.BandwidthMatrix()}
	if err := trace.WriteEvents(&file, ti, events); err != nil {
		t.Fatal(err)
	}
	s, err := trace.ReadEvents(&file)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Analyze(s.Events, cluster.NewTopologyFromMatrix(s.Topo.Name, s.Topo.Bandwidth))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteText(&a, direct); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&b, rt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("report after stream round trip differs from direct analysis")
	}
}
