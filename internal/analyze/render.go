package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Rendering is byte-deterministic: fixed field order, fixed float precision
// (%.6f), and sorts with total orders only — reports of the same stream are
// identical files, which is what the Workers-1/4/8 determinism tests pin.

// WriteText renders the critical-path report for the terminal.
func WriteText(w io.Writer, r *Report) error {
	fmt.Fprintf(w, "critical-path report\n")
	fmt.Fprintf(w, "  makespan: %.6f s\n\n", r.Makespan)

	fmt.Fprintf(w, "blame attribution (sums to makespan)\n")
	for _, cat := range Categories {
		v := r.Blame[cat]
		pct := 0.0
		if r.Makespan > 0 {
			pct = v / r.Makespan * 100
		}
		fmt.Fprintf(w, "  %-18s %14.6f s  %5.1f%%\n", cat, v, pct)
	}
	total := 0.0
	for _, cat := range Categories {
		total += r.Blame[cat]
	}
	fmt.Fprintf(w, "  %-18s %14.6f s\n\n", "total", total)

	fmt.Fprintf(w, "per-stage blame (chronological)\n")
	for _, row := range r.Stages {
		fmt.Fprintf(w, "  %-36s %12.6f s", row.Label, row.Total)
		for _, cat := range Categories {
			if v := row.Seconds[cat]; v > 0 {
				fmt.Fprintf(w, "  %s=%.6f", cat, v)
			}
		}
		fmt.Fprintf(w, "\n")
	}
	fmt.Fprintf(w, "\n")

	fmt.Fprintf(w, "critical path: %d steps; longest segments:\n", len(r.Path))
	for _, st := range topSegments(r.Path, 12) {
		loc := st.Job
		if st.Stage != "" {
			loc += "/" + st.Stage
		}
		name := st.Name
		if name == "" {
			name = "-"
		}
		fmt.Fprintf(w, "  %12.6f s  %-14s %-36s %-18s m%d\n",
			st.Seconds, st.Kind, loc, name, st.Machine)
	}

	if r.Links != nil {
		fmt.Fprintf(w, "\nlink utilization by bisection level (0 = top-level cut)\n")
		for _, ls := range r.Links.Levels {
			fmt.Fprintf(w, "  level %d: links=%d transfers=%d bytes=%d busy=%.6fs\n",
				ls.Level, ls.Links, ls.Transfers, ls.Bytes, ls.BusySeconds)
			fmt.Fprintf(w, "    timeline:")
			for _, v := range ls.Timeline {
				fmt.Fprintf(w, " %.6f", v)
			}
			fmt.Fprintf(w, "\n")
		}
		fmt.Fprintf(w, "  hot links:\n")
		for _, st := range r.Links.Hot {
			fmt.Fprintf(w, "    m%d->m%d level=%d busy=%.6fs stall=%.6fs bytes=%d transfers=%d\n",
				st.Src, st.Dst, st.Level, st.BusySeconds, st.StallSeconds, st.Bytes, st.Transfers)
		}
	}
	return nil
}

// topSegments returns the n path steps with the most attributed seconds
// (ties by Seq, ascending).
func topSegments(path []PathStep, n int) []PathStep {
	out := append([]PathStep(nil), path...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Seq < out[j].Seq
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// WriteJSON renders the report as indented JSON (maps marshal with sorted
// keys, so the bytes are deterministic).
func WriteJSON(w io.Writer, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteDiffText renders the delta report for the terminal.
func WriteDiffText(w io.Writer, d *DiffReport) error {
	fmt.Fprintf(w, "trace diff (B - A; positive = B slower)\n")
	fmt.Fprintf(w, "  makespan: A=%.6f s  B=%.6f s  delta=%+.6f s\n\n", d.MakespanA, d.MakespanB, d.Delta)

	fmt.Fprintf(w, "blame deltas\n")
	for _, cd := range d.Categories {
		fmt.Fprintf(w, "  %-18s A=%12.6f  B=%12.6f  delta=%+.6f\n", cd.Category, cd.A, cd.B, cd.Delta)
	}

	fmt.Fprintf(w, "\nper-stage deltas\n")
	for _, sd := range d.Stages {
		fmt.Fprintf(w, "  %-36s A=%12.6f  B=%12.6f  delta=%+.6f", sd.Label, sd.A, sd.B, sd.Delta)
		if sd.Worst != "" {
			fmt.Fprintf(w, "  worst=%s", sd.Worst)
		}
		fmt.Fprintf(w, "\n")
	}

	if len(d.Links) > 0 {
		fmt.Fprintf(w, "\nregressing links (busy seconds)\n")
		for _, ld := range d.Links {
			fmt.Fprintf(w, "  m%d->m%d level=%d A=%.6f B=%.6f delta=%+.6f\n",
				ld.Src, ld.Dst, ld.Level, ld.A, ld.B, ld.Delta)
		}
	}
	if len(d.Machines) > 0 {
		fmt.Fprintf(w, "\nregressing machines (compute seconds)\n")
		for _, md := range d.Machines {
			fmt.Fprintf(w, "  m%d A=%.6f B=%.6f delta=%+.6f\n", md.Machine, md.A, md.B, md.Delta)
		}
	}
	return nil
}

// WriteDiffJSON renders the delta report as indented JSON.
func WriteDiffJSON(w io.Writer, d *DiffReport) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
