package analyze

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/partition"
	"repro/internal/storage"
	"repro/internal/trace"
)

// scaleWindow emits one job window: begin at t0, end at t0+1, optionally
// with a transfer keeping the 0→1 link busy for busy seconds.
func scaleWindow(rec *trace.Recorder, name string, t0, busy float64) {
	b := rec.Emit(trace.Event{Kind: trace.KindJobBegin, Job: name, Cause: trace.None,
		Machine: trace.None, Dst: trace.None, Part: trace.None, Time: t0})
	if busy > 0 {
		rec.Emit(trace.Event{Kind: trace.KindTransfer, Job: name, Cause: b,
			Machine: 0, Dst: 1, Part: trace.None, Bytes: int64(busy * cluster.LinkBandwidth),
			Time: t0, Start: t0, End: t0 + busy})
	}
	rec.Emit(trace.Event{Kind: trace.KindJobEnd, Job: name, Cause: b,
		Machine: trace.None, Dst: trace.None, Part: trace.None, Time: t0 + 1})
}

func TestAutoscalePolicy(t *testing.T) {
	// On a two-machine cluster the 0→1 link is the level-0 cut. Two
	// saturated windows (util 0.9) trigger one join; two idle windows
	// afterwards trigger one drain of machine 1 (machine 0 is never
	// drained).
	rec := trace.NewRecorder()
	scaleWindow(rec, "w1", 0, 0.9)
	scaleWindow(rec, "w2", 1, 0.9)
	scaleWindow(rec, "w3", 2, 0)
	scaleWindow(rec, "w4", 3, 0)
	topo := cluster.NewT1(2)
	plan, err := Autoscale(rec.Events(), topo, AutoscalePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Windows) != 4 {
		t.Fatalf("windows = %d, want 4", len(plan.Windows))
	}
	if !plan.Windows[0].Saturated || !plan.Windows[1].Saturated {
		t.Fatalf("saturated flags = %+v", plan.Windows[:2])
	}
	if !plan.Windows[2].Idle || !plan.Windows[3].Idle {
		t.Fatalf("idle flags = %+v", plan.Windows[2:])
	}
	if math.Abs(plan.Windows[0].MaxLevel0Util-0.9) > 1e-9 {
		t.Fatalf("util = %g, want 0.9", plan.Windows[0].MaxLevel0Util)
	}
	if len(plan.Joins) != 1 || int(plan.Joins[0].Machine) != 2 || plan.Joins[0].At != 2 {
		t.Fatalf("joins = %+v, want machine 2 at t=2", plan.Joins)
	}
	if len(plan.Drains) != 1 || plan.Drains[0].Machine != 1 || plan.Drains[0].At != 4 {
		t.Fatalf("drains = %+v, want machine 1 at t=4", plan.Drains)
	}
	// Default slack: twice the triggering window's length.
	if math.Abs(plan.Drains[0].Deadline-6) > 1e-9 {
		t.Fatalf("deadline = %g, want 6", plan.Drains[0].Deadline)
	}
	// The plan converts to a replayable fault file whose schedule validates
	// against the expanded topology.
	f := plan.File()
	if err := f.Validate(topo.NumMachines() + len(plan.Joins)); err != nil {
		t.Fatalf("plan file invalid: %v", err)
	}
	s := f.Schedule()
	if len(s.Joins) != 1 || len(s.Drains) != 1 {
		t.Fatalf("round-tripped schedule = %+v", s)
	}
	// No topology, no plan.
	if _, err := Autoscale(rec.Events(), nil, AutoscalePolicy{}); err == nil {
		t.Fatal("nil topology should be rejected")
	}
}

func TestAutoscaleQuietTraceRecommendsNothing(t *testing.T) {
	rec := trace.NewRecorder()
	scaleWindow(rec, "w1", 0, 0.5) // between the thresholds
	scaleWindow(rec, "w2", 1, 0.9) // saturated once — below K
	plan, err := Autoscale(rec.Events(), cluster.NewT1(2), AutoscalePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Joins) != 0 || len(plan.Drains) != 0 {
		t.Fatalf("plan = %+v, want no recommendations", plan)
	}
}

// elasticRun executes a drain-gated workload: the joining spot instance's
// half-rate NIC makes the live migration the last event of the stage, so the
// critical path must pass through it and the migration category gets blame.
func elasticRun(t *testing.T, workers int) ([]trace.Event, *cluster.Topology) {
	t.Helper()
	topo := cluster.NewT1(4)
	reps := &storage.Replicas{Machines: [][]cluster.MachineID{
		{0, 2}, {1, 3}, {2, 0},
	}}
	rec := trace.NewRecorder()
	bw := int64(cluster.LinkBandwidth)
	r := engine.New(engine.Config{
		Topo: topo, Replicas: reps, Trace: rec, Workers: workers,
		Faults: &fault.Schedule{
			Joins:  []fault.MachineJoin{{Machine: 3, At: 0.25, NICs: cluster.LinkBandwidth / 2}},
			Drains: []fault.MachineDrain{{Machine: 1, At: 0.5, Deadline: 10}},
		},
		PartBytes: []int64{0, bw, 0},
	})
	tasks := make([]*engine.Task, 3)
	for i := range tasks {
		tasks[i] = &engine.Task{Name: "t" + string(rune('0'+i)),
			Part: partition.PartID(i), Machine: cluster.MachineID(i), Compute: 2}
	}
	job := &engine.Job{Name: "elastic", Stages: []*engine.Stage{{Name: "work", Tasks: tasks}}}
	if _, err := r.Run(job); err != nil {
		t.Fatal(err)
	}
	return rec.Events(), topo
}

// TestMigrationBlameSumsToMakespan: with a drain's migration gating the
// stage, the analyzer attributes real seconds to the migration category and
// the blame categories still partition 100% of the makespan.
func TestMigrationBlameSumsToMakespan(t *testing.T) {
	events, topo := elasticRun(t, 1)
	r, err := Analyze(events, topo)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, cat := range Categories {
		v, ok := r.Blame[cat]
		if !ok {
			t.Fatalf("category %s missing from blame map", cat)
		}
		if v < 0 {
			t.Fatalf("negative blame %s=%v", cat, v)
		}
		sum += v
	}
	if math.Abs(sum-r.Makespan) > 1e-9*math.Max(1, r.Makespan) {
		t.Fatalf("blame sums to %v, makespan %v", sum, r.Makespan)
	}
	if r.Blame[CatMigration] <= 0 {
		t.Fatalf("migration got no blame: %+v", r.Blame)
	}
}

// TestGoldenElasticReport pins the exact surfer-analyze report of the
// elastic workload — the migration blame row included (-update regenerates).
func TestGoldenElasticReport(t *testing.T) {
	events, topo := elasticRun(t, 1)
	r, err := Analyze(events, topo)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, r); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "critical_path_elastic.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("elastic report drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
	// And it is byte-identical across worker counts.
	for _, workers := range []int{4, 8} {
		ev, tp := elasticRun(t, workers)
		rn, err := Analyze(ev, tp)
		if err != nil {
			t.Fatal(err)
		}
		var b2 bytes.Buffer
		if err := WriteText(&b2, rn); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), b2.Bytes()) {
			t.Fatalf("elastic report with Workers=%d differs from Workers=1", workers)
		}
	}
}
