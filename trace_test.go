package surfer

import (
	"bytes"
	"encoding/json"
	"testing"
)

// traceRun executes the acceptance workload of the observability layer: a
// 4-partition PageRank on the heterogeneous topology T3, traced, with the
// given worker-pool size. It returns the Chrome export bytes, the recorded
// stream's breakdown totals, and the run metrics.
func traceRun(t *testing.T, workers int) ([]byte, *TraceBreakdown, Metrics) {
	t.Helper()
	g := Social(DefaultSocial(2048, 7))
	rec := NewTraceRecorder()
	sys, err := Build(Config{
		Graph: g, Topology: NewT3(8, 7), Levels: 2, Seed: 7,
		Workers: workers, Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	prog := &pagerank{g: g, n: float64(g.NumVertices())}
	_, m, err := RunPropagation(sys, sys.NewRunner(), prog, 3,
		PropagationOptions{LocalPropagation: true, LocalCombination: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), SummarizeTrace(rec.Events()), m
}

// TestTraceAcceptance is the PR's acceptance criterion: the traced T3
// PageRank run produces valid Chrome trace_event JSON whose per-machine
// egress/ingress accounting sums to the engine's network totals, and the
// exported bytes are identical for every compute worker count.
func TestTraceAcceptance(t *testing.T) {
	json1, b1, m1 := traceRun(t, 1)

	// The export parses as Chrome trace_event JSON.
	var tf struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Ts  float64 `json:"ts"`
			Pid int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(json1, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace is empty")
	}

	// Per-machine byte accounting reconciles with engine.Metrics.
	tot := b1.Totals()
	if tot.EgressBytes != m1.NetworkBytes {
		t.Fatalf("trace egress bytes = %d, metrics network bytes = %d",
			tot.EgressBytes, m1.NetworkBytes)
	}
	if tot.IngressBytes != m1.NetworkBytes {
		t.Fatalf("trace ingress bytes = %d, metrics network bytes = %d",
			tot.IngressBytes, m1.NetworkBytes)
	}
	// Every transfer occupies one egress and one ingress NIC for the same
	// interval, so the cluster-wide busy times agree.
	if tot.EgressBusySeconds != tot.IngressBusySeconds {
		t.Fatalf("egress busy %v != ingress busy %v",
			tot.EgressBusySeconds, tot.IngressBusySeconds)
	}
	if tot.TasksRun != m1.TasksRun {
		t.Fatalf("trace tasks = %d, metrics tasks = %d", tot.TasksRun, m1.TasksRun)
	}

	// Determinism: byte-identical export for every worker count.
	for _, workers := range []int{4, 8} {
		jsonN, _, mN := traceRun(t, workers)
		if !bytes.Equal(json1, jsonN) {
			t.Fatalf("trace with Workers=%d differs from Workers=1", workers)
		}
		if mN != m1 {
			t.Fatalf("metrics with Workers=%d differ: %+v vs %+v", workers, mN, m1)
		}
	}
}

// TestTraceThroughScheduler: jobs run through the public scheduler land in
// the system's recorder too.
func TestTraceThroughScheduler(t *testing.T) {
	g := Social(DefaultSocial(1024, 3))
	rec := NewTraceRecorder()
	sys, err := Build(Config{
		Graph: g, Topology: NewT1(4), Levels: 2, Seed: 3, Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	prog := &pagerank{g: g, n: float64(g.NumVertices())}
	sched := NewScheduler(sys, ScheduleFIFO)
	sched.Submit(JobRequest{Name: "pr", User: "u", Run: func(r *Runner) (Metrics, error) {
		_, m, err := RunPropagation(sys, r, prog, 1, PropagationOptions{})
		return m, err
	}})
	sched.RunAll()
	if rec.Len() == 0 {
		t.Fatal("scheduled job emitted no trace events")
	}
	b := SummarizeTrace(rec.Events())
	if len(b.Jobs) == 0 || b.Jobs[0].Name != "propagation-iter-001" {
		t.Fatalf("unexpected traced jobs: %+v", b.Jobs)
	}
}
