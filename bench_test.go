package surfer

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates its experiment on the simulated cluster and reports
// the headline quantity as a custom metric, so `go test -bench=. -benchmem`
// reproduces the whole evaluation. cmd/surfer-bench prints the full tables
// at the default scale.

import (
	"testing"

	"repro/internal/bench"
)

// benchScale keeps per-iteration cost moderate while preserving the
// paper-shaped results (32 machines, 64 partitions).
func benchScale() bench.Scale {
	return bench.Scale{Vertices: 1 << 14, Levels: 6, Machines: 32, Seed: 42}
}

func BenchmarkTable1PartitioningTopologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Topology == "T2(2,1)" {
				b.ReportMetric(r.ImprovementPct, "T2(2,1)-improv-%")
			}
		}
	}
}

func BenchmarkTable2And3OptimizationLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := bench.Tables23(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		var o1, o4 float64
		for _, c := range cells {
			if c.App == "NR" && c.Level == bench.O1 {
				o1 = c.Metrics.ResponseSeconds
			}
			if c.App == "NR" && c.Level == bench.O4 {
				o4 = c.Metrics.ResponseSeconds
			}
		}
		b.ReportMetric(100*(o1-o4)/o1, "NR-O1-to-O4-improv-%")
	}
}

func BenchmarkTable4UserCodeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table4("internal/apps")
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, r := range rows {
			total += r.PropagationLoC
		}
		b.ReportMetric(float64(total)/float64(len(rows)), "avg-propagation-loc")
	}
}

func BenchmarkTable5PartitionQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].IerOursPct, "ier-%-finest")
	}
}

func BenchmarkFig6TopologyImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, r := range rows {
			if r.ImprovementPct > best {
				best = r.ImprovementPct
			}
		}
		b.ReportMetric(best, "best-improv-%")
	}
}

func BenchmarkFig7MapReduceVsPropagation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig7(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.App == "NR" {
				b.ReportMetric(r.Speedup, "NR-speedup-x")
			}
		}
	}
}

func BenchmarkFig9DelaySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig9(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].ImprovementPct, "improv-%-at-128x")
	}
}

func BenchmarkFig10FaultTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig10(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OverheadPct, "recovery-overhead-%")
	}
}

func BenchmarkFig11Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig11And12(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		first, last := rows[0].PropSec, rows[len(rows)-1].PropSec
		b.ReportMetric(last/first, "resp-ratio-32m-vs-8m")
	}
}

func BenchmarkFig12MapReduceVsPropagationScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig11And12(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Speedup, "speedup-x-32m")
	}
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Ablation(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Topology == "T2(2,1)" && r.App == "NR" && r.Variant == "tree-aggregation" {
				b.ReportMetric(r.Metrics.ResponseSeconds, "tree-agg-NR-resp-s")
			}
		}
	}
}

func BenchmarkCascadedPropagation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Cascade(benchScale(), 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DiskSavingPct, "disk-saving-%")
	}
}
