package surfer

import (
	"math"
	"testing"
)

// TestFaultToleranceParallel is the Figure 10 scenario (a slave machine
// dies mid-run and its tasks re-execute on replicas) crossed with the
// parallel executor: for every worker count, the failover run must produce
// vertex values bit-identical to a failure-free run, and both the
// failure-free and the failover runs must report identical metrics for
// every worker count.
func TestFaultToleranceParallel(t *testing.T) {
	g := Social(DefaultSocial(8192, 3))
	topo := NewT1(8)
	opt := PropagationOptions{LocalPropagation: true, LocalCombination: true}
	prog := &pagerank{g: g, n: float64(g.NumVertices())}

	build := func(workers int, failures []Failure, heartbeat float64) (*State[float64], Metrics) {
		t.Helper()
		sys, err := Build(Config{
			Graph: g, Topology: topo, Levels: 4, Seed: 3,
			Failures: failures, HeartbeatInterval: heartbeat,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, m, err := RunPropagation(sys, sys.NewRunner(), prog, 3, opt)
		if err != nil {
			t.Fatal(err)
		}
		return st, m
	}

	// Failure-free serial reference, then a kill time that interrupts a
	// running task (30% into the baseline, as in examples/faulttolerance).
	baseSt, baseM := build(1, nil, 0)
	killAt := baseM.ResponseSeconds * 0.3
	heartbeat := baseM.ResponseSeconds / 20

	for _, workers := range []int{1, 2, 8} {
		t.Run(map[int]string{1: "serial", 2: "workers2", 8: "workers8"}[workers], func(t *testing.T) {
			cleanSt, cleanM := build(workers, nil, 0)
			if cleanM != baseM {
				t.Errorf("failure-free metrics diverge: %+v vs %+v", cleanM, baseM)
			}
			failSt, failM := build(workers, []Failure{{Machine: 2, At: killAt}}, heartbeat)
			if failM.Recoveries == 0 {
				t.Fatalf("failure at %.3fs produced no recoveries", killAt)
			}
			for v := range baseSt.Values {
				if math.Float64bits(cleanSt.Values[v]) != math.Float64bits(baseSt.Values[v]) {
					t.Fatalf("vertex %d: failure-free parallel value diverges from serial", v)
				}
				if math.Float64bits(failSt.Values[v]) != math.Float64bits(baseSt.Values[v]) {
					t.Fatalf("vertex %d: post-failover value diverges from failure-free run", v)
				}
			}
			// TasksRun counts completions, so it matches the clean run even
			// with re-executions; the failover cost shows up as delay.
			if failM.ResponseSeconds <= cleanM.ResponseSeconds {
				t.Errorf("failover response %.3fs not slower than clean %.3fs", failM.ResponseSeconds, cleanM.ResponseSeconds)
			}
		})
	}

	// The failover run itself is deterministic across worker counts.
	_, failRef := build(1, []Failure{{Machine: 2, At: killAt}}, heartbeat)
	for _, workers := range []int{2, 8} {
		if _, m := build(workers, []Failure{{Machine: 2, At: killAt}}, heartbeat); m != failRef {
			t.Errorf("workers=%d: failover metrics %+v, want %+v", workers, m, failRef)
		}
	}
}
