package surfer

import "testing"

func TestRunWorkloadAll(t *testing.T) {
	sys := buildTestSystem(t)
	opt := PropagationOptions{LocalPropagation: true, LocalCombination: true}
	for _, name := range WorkloadNames() {
		res, m, err := RunWorkload(sys, sys.NewRunner(), name, 2, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res == nil {
			t.Fatalf("%s: nil result", name)
		}
		if m.ResponseSeconds <= 0 {
			t.Fatalf("%s: no time elapsed", name)
		}
	}
}

func TestRunWorkloadUnknown(t *testing.T) {
	sys := buildTestSystem(t)
	if _, _, err := RunWorkload(sys, sys.NewRunner(), "NOPE", 1, PropagationOptions{}); err == nil {
		t.Fatal("expected error for unknown workload")
	}
	if _, _, err := RunWorkloadMapReduce(sys, sys.NewRunner(), "NOPE", 1); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestPageRankHelper(t *testing.T) {
	sys := buildTestSystem(t)
	ranks, _, err := PageRank(sys, sys.NewRunner(), 3, PropagationOptions{LocalPropagation: true, LocalCombination: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != sys.Graph.NumVertices() {
		t.Fatalf("ranks = %d entries", len(ranks))
	}
	sum := 0.0
	for _, r := range ranks {
		sum += r
	}
	if sum < 0.5 || sum > 1.0+1e-9 {
		t.Fatalf("rank sum = %g", sum)
	}
}

func TestConnectedComponentsHelper(t *testing.T) {
	sys := buildTestSystem(t)
	labels, _, err := ConnectedComponents(sys, sys.NewRunner(), PropagationOptions{LocalCombination: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every label must name a vertex in the same component: spot-check
	// that labels are at most the vertex ID (labels are minima).
	for v, l := range labels {
		if int(l) > v {
			t.Fatalf("label[%d] = %d exceeds vertex ID", v, l)
		}
	}
}

func TestDegreeDistributionHelper(t *testing.T) {
	sys := buildTestSystem(t)
	hist, _, err := DegreeDistribution(sys, sys.NewRunner(), PropagationOptions{LocalCombination: true})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range hist {
		total += c
	}
	if total != int64(sys.Graph.NumVertices()) {
		t.Fatalf("histogram total = %d, want %d", total, sys.Graph.NumVertices())
	}
}

func TestWorkloadMapReduceAgreesWithPropagation(t *testing.T) {
	sys := buildTestSystem(t)
	opt := PropagationOptions{LocalPropagation: true, LocalCombination: true}
	for _, name := range []string{WorkloadVDD, WorkloadNR, WorkloadCC} {
		p, _, err := RunWorkload(sys, sys.NewRunner(), name, 3, opt)
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := RunWorkloadMapReduce(sys, sys.NewRunner(), name, 3)
		if err != nil {
			t.Fatal(err)
		}
		switch name {
		case WorkloadVDD:
			ph, mh := p.(map[int]int64), m.(map[int]int64)
			for k, v := range ph {
				if mh[k] != v {
					t.Fatalf("VDD mismatch at degree %d", k)
				}
			}
		case WorkloadNR:
			pr, mr := p.([]float64), m.([]float64)
			for v := range pr {
				if diff := pr[v] - mr[v]; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("NR mismatch at %d", v)
				}
			}
		case WorkloadCC:
			pl, ml := p.([]uint32), m.([]uint32)
			for v := range pl {
				if pl[v] != ml[v] {
					t.Fatalf("CC mismatch at %d", v)
				}
			}
		}
	}
}
