// surfer-tune searches the deployment configuration space — engine workers
// × partition count × combiner settings — by coordinate descent and reports
// the best configuration for an application at a given scale.
//
// The default objective is the simulated cluster's virtual response time:
// fully deterministic, so the same seed always reproduces the same search
// trajectory and winner (the CI smoke relies on this). With -objective wall
// the tuner instead minimizes host wall-clock, measured adaptively (each
// configuration reruns until the relative standard error of the mean drops
// below -max-rel-err or -max-runs is hit), and also sweeps the worker-pool
// axis, which never affects virtual results.
//
// Usage:
//
//	surfer-tune -app nr -vertices 65536 -budget 24
//	surfer-tune -app tfl -objective wall -max-rel-err 0.1
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("surfer-tune: ")
	var (
		app       = flag.String("app", "nr", "application to tune: nr|tfl")
		vertices  = flag.Int("vertices", 1<<16, "synthetic graph vertices")
		machines  = flag.Int("machines", 32, "machines in the simulated cluster")
		seed      = flag.Int64("seed", 42, "random seed (drives generation, partitioning, and the deterministic objective)")
		levels    = flag.Int("levels", 6, "starting log2 partition count")
		levelsMin = flag.Int("levels-min", 1, "partition-count axis lower bound (log2)")
		levelsMax = flag.Int("levels-max", 0, "partition-count axis upper bound (log2, 0 = levels+2)")
		budget    = flag.Int("budget", 24, "maximum distinct configuration evaluations")
		objective = flag.String("objective", "virtual", "virtual (deterministic simulated seconds) | wall (adaptive host seconds)")
		maxRuns   = flag.Int("max-runs", 6, "wall objective: maximum reruns per configuration")
		maxRelErr = flag.Float64("max-rel-err", 0.1, "wall objective: relative standard error convergence bound")
		jsonOut   = flag.String("json", "", "write the result as a surfer-bench/v1 report to this file")
	)
	flag.Parse()

	cfg := bench.TuneConfig{
		Scale:     bench.Scale{Vertices: *vertices, Levels: *levels, Machines: *machines, Seed: *seed},
		App:       *app,
		Budget:    *budget,
		LevelsMin: *levelsMin,
		LevelsMax: *levelsMax,
		Adaptive:  bench.AdaptiveConfig{MaxRuns: *maxRuns, MaxRelErr: *maxRelErr},
	}
	switch *objective {
	case "virtual":
		cfg.Objective = bench.ObjVirtual
	case "wall":
		cfg.Objective = bench.ObjWall
	default:
		log.Fatalf("unknown objective %q (want virtual or wall)", *objective)
	}
	res, err := bench.Tune(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bench.WriteTune(os.Stdout, cfg, res)
	if *jsonOut != "" {
		r := bench.FromTune(cfg, res)
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
