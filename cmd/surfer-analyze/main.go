// surfer-analyze turns raw event streams (surfer-run -events /
// surfer-bench -events) into critical-path reports, diffs two runs, and
// gates bench reports against a baseline.
//
// Usage:
//
//	surfer-analyze -trace run.events [-json]
//	surfer-analyze -autoscale run.events [-json]
//	surfer-analyze -diff a.events b.events [-json]
//	surfer-analyze -compare old.json new.json [-threshold 5%]
//
// -trace reconstructs the causal DAG from one stream, extracts the
// critical path, and attributes every second of the makespan to a blame
// category (see docs/METRICS.md §6). -diff analyzes two streams of the
// same workload and reports per-stage / per-category deltas plus the
// regressing links and machines. -compare checks a surfer-bench -json
// report against a baseline and exits nonzero when any gated metric
// regressed past the threshold, which makes it usable as a CI gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/analyze"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("surfer-analyze: ")
	var (
		traceIn   = flag.String("trace", "", "raw event stream to analyze (from surfer-run -events)")
		doDiff    = flag.Bool("diff", false, "diff two raw event streams given as positional args: A.events B.events")
		doCompare = flag.Bool("compare", false, "gate a bench report against a baseline, positional args: old.json new.json")
		threshold = flag.String("threshold", "5%", "regression threshold for -compare (percent; trailing % optional)")
		autoscale = flag.String("autoscale", "", "raw event stream (with topology header) to run the utilization-driven autoscaling policy on; prints the recommended joins/drains and, with -json, a fault-schedule file ready for surfer-run -fail")
		asJSON    = flag.Bool("json", false, "emit the report as JSON instead of text")
	)
	flag.Parse()
	// The issue-standard invocation puts flags after the positional files
	// ("-compare old.json new.json -threshold 5%"); stdlib flag stops at the
	// first positional, so re-parse interleaved flags ourselves.
	var args []string
	for rest := flag.Args(); len(rest) > 0; {
		if strings.HasPrefix(rest[0], "-") {
			flag.CommandLine.Parse(rest)
			rest = flag.CommandLine.Args()
			continue
		}
		args = append(args, rest[0])
		rest = rest[1:]
	}

	switch {
	case *doCompare:
		if len(args) != 2 {
			log.Fatal("-compare wants two positional args: old.json new.json")
		}
		pct, err := parseThreshold(*threshold)
		if err != nil {
			log.Fatal(err)
		}
		runCompare(args[0], args[1], pct)
	case *doDiff:
		if len(args) != 2 {
			log.Fatal("-diff wants two positional args: A.events B.events")
		}
		a := analyzeFile(args[0])
		b := analyzeFile(args[1])
		d := analyze.Diff(a, b)
		if *asJSON {
			must(analyze.WriteDiffJSON(os.Stdout, d))
		} else {
			must(analyze.WriteDiffText(os.Stdout, d))
		}
	case *autoscale != "":
		runAutoscale(*autoscale, *asJSON)
	case *traceIn != "":
		r := analyzeFile(*traceIn)
		if *asJSON {
			must(analyze.WriteJSON(os.Stdout, r))
		} else {
			must(analyze.WriteText(os.Stdout, r))
		}
	default:
		log.Fatal("nothing to do: want -trace f, -autoscale f, -diff a b, or -compare old new")
	}
}

// runAutoscale applies the default autoscaling policy to an event stream.
// With -json it emits the plan's fault-schedule file (the format surfer-run
// -fail consumes), so recommendation → replay is one pipe.
func runAutoscale(path string, asJSON bool) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	s, err := trace.ReadEvents(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	if s.Topo == nil {
		log.Fatalf("%s: no topology header (write the stream with surfer-run -events, not surfer-bench)", path)
	}
	topo := cluster.NewTopologyFromMatrix(s.Topo.Name, s.Topo.Bandwidth)
	plan, err := analyze.Autoscale(s.Events, topo, analyze.AutoscalePolicy{})
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		must(enc.Encode(plan.File()))
		return
	}
	fmt.Printf("autoscale: %d window(s), %d join(s), %d drain(s) recommended\n",
		len(plan.Windows), len(plan.Joins), len(plan.Drains))
	for _, w := range plan.Windows {
		state := ""
		if w.Saturated {
			state = "  SATURATED"
		} else if w.Idle {
			state = "  idle"
		}
		fmt.Printf("  %-12s [%8.4f, %8.4f]  max level-0 util %5.1f%%%s\n",
			w.Job, w.Start, w.End, 100*w.MaxLevel0Util, state)
	}
	for _, j := range plan.Joins {
		fmt.Printf("  join machine %d at %.4f\n", j.Machine, j.At)
	}
	for _, d := range plan.Drains {
		fmt.Printf("  drain machine %d at %.4f (deadline %.4f)\n", d.Machine, d.At, d.Deadline)
	}
}

// analyzeFile loads a raw event stream and runs the critical-path
// analysis. A topology header in the stream enables the link-utilization
// section; without one the report simply omits it.
func analyzeFile(path string) *analyze.Report {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	s, err := trace.ReadEvents(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	var topo *cluster.Topology
	if s.Topo != nil {
		topo = cluster.NewTopologyFromMatrix(s.Topo.Name, s.Topo.Bandwidth)
	}
	r, err := analyze.Analyze(s.Events, topo)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return r
}

// runCompare loads two bench reports and exits 1 when any gated metric in
// new exceeds old by more than pct percent.
func runCompare(oldPath, newPath string, pct float64) {
	old, err := bench.LoadReport(oldPath)
	if err != nil {
		log.Fatal(err)
	}
	cur, err := bench.LoadReport(newPath)
	if err != nil {
		log.Fatal(err)
	}
	regs := bench.Compare(old, cur, pct)
	if len(regs) == 0 {
		fmt.Printf("compare: OK (%d entries, threshold %.1f%%)\n", len(cur.Entries), pct)
		return
	}
	for _, r := range regs {
		fmt.Printf("REGRESSION %s/%s %s: %.6f -> %.6f (+%.1f%%)\n",
			r.Experiment, r.Case, r.Metric, r.Old, r.New, r.Pct)
	}
	fmt.Printf("compare: %d regression(s) past %.1f%% threshold\n", len(regs), pct)
	os.Exit(1)
}

// parseThreshold accepts "5", "5%", "2.5%".
func parseThreshold(s string) (float64, error) {
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad -threshold %q (want a percentage like 5%%)", s)
	}
	return v, nil
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
