// Command surfer-lint enforces Surfer's determinism contract statically
// (docs/LINTS.md): wall-clock and global-randomness calls — direct (SL001)
// or laundered through any chain of helper packages (SL005, reported with
// the full call chain) — map-iteration order leaking into ordered output,
// concurrency outside the engine's worker pool, order-sensitive float
// folds, mutation of published shared CSR views, and schema vocabulary
// missing from docs/METRICS.md never reach a replay.
//
// Usage:
//
//	surfer-lint [-json|-sarif] [-baseline file] [-update-baseline] [packages]
//
// Packages default to ./... relative to the module root (found by walking
// up from the working directory; overridable with -root, which is how the
// known-bad corpus under internal/lint/testdata/src is linted on purpose).
// A pattern that matches no Go files is an error (exit 2): an empty run
// must not masquerade as a clean one.
//
// -json emits every finding — suppressed ones included, with
// "suppressed": true and the pragma reason, and baselined warns with
// "baselined": true — so the suppression inventory is auditable. -sarif
// emits SARIF 2.1.0 for review tooling. Both outputs are byte-deterministic.
//
// The exit gate is lint.Failing: unsuppressed error-severity findings
// always fail (exit 1); warn-severity findings fail unless parked in the
// committed baseline (lint-baseline.json at the root, overridable with
// -baseline). -update-baseline rewrites that file from the current run's
// warn findings and exits 0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON (includes suppressed and baselined findings)")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	rootFlag := flag.String("root", "", "analyze this tree instead of the enclosing module")
	baselineFlag := flag.String("baseline", "", "warn-findings baseline file (default <root>/lint-baseline.json)")
	updateBaseline := flag.Bool("update-baseline", false, "rewrite the baseline from this run's warn findings and exit 0")
	flag.Parse()

	if *jsonOut && *sarifOut {
		fatal(fmt.Errorf("surfer-lint: -json and -sarif are mutually exclusive"))
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root := *rootFlag
	if root == "" {
		var err error
		root, err = moduleRoot()
		if err != nil {
			fatal(err)
		}
	}
	baselinePath := *baselineFlag
	if baselinePath == "" {
		baselinePath = filepath.Join(root, "lint-baseline.json")
	}

	findings, err := lint.Run(lint.DefaultConfig(root), patterns)
	if err != nil {
		fatal(err)
	}

	if *updateBaseline {
		b := lint.BaselineFrom(findings)
		if err := lint.WriteBaseline(baselinePath, b); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "surfer-lint: baseline %s rewritten with %d warn finding(s)\n",
			baselinePath, len(b.Findings))
		return
	}

	baseline, err := lint.LoadBaseline(baselinePath)
	if err != nil {
		fatal(err)
	}
	lint.ApplyBaseline(findings, baseline)
	failing := lint.Failing(findings)

	switch {
	case *jsonOut:
		out := struct {
			Findings     []lint.Finding `json:"findings"`
			Total        int            `json:"total"`
			Unsuppressed int            `json:"unsuppressed"`
			Failing      int            `json:"failing"`
		}{Findings: findings, Total: len(findings),
			Unsuppressed: len(lint.Unsuppressed(findings)), Failing: len(failing)}
		if out.Findings == nil {
			out.Findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	case *sarifOut:
		if err := lint.WriteSARIF(os.Stdout, findings); err != nil {
			fatal(err)
		}
	default:
		for _, f := range failing {
			fmt.Println(f)
			for _, frame := range f.Chain {
				fmt.Printf("\t%s\n", frame)
			}
		}
		if n := len(findings) - len(lint.Unsuppressed(findings)); n > 0 {
			fmt.Fprintf(os.Stderr, "surfer-lint: %d finding(s) suppressed by //lint:allow pragmas (run -json to audit)\n", n)
		}
		if n := len(lint.Unsuppressed(findings)) - len(failing); n > 0 {
			fmt.Fprintf(os.Stderr, "surfer-lint: %d warn finding(s) parked in %s\n", n, baselinePath)
		}
	}
	if len(failing) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(os.Stderr, "surfer-lint: %d failing finding(s)\n", len(failing))
		}
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("surfer-lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
