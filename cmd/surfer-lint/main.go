// Command surfer-lint enforces Surfer's determinism contract statically
// (docs/LINTS.md): wall-clock and global-randomness calls, map-iteration
// order leaking into ordered output, and concurrency outside the engine's
// worker pool never reach a replay. It walks the repository's simulation
// packages, reports findings as file:line:col: SLnnn: message, and exits
// nonzero if any finding is not suppressed by a //lint:allow pragma.
//
// Usage:
//
//	surfer-lint [-json] [packages]
//
// Packages default to ./... relative to the module root (found by walking
// up from the working directory; overridable with -root, which is how the
// known-bad corpus under internal/lint/testdata/src is linted on purpose).
// -json emits every finding — suppressed
// ones included, with "suppressed": true and the pragma reason — so the
// suppression inventory is auditable; text mode prints only the findings
// that fail the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON (includes suppressed findings)")
	rootFlag := flag.String("root", "", "analyze this tree instead of the enclosing module")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root := *rootFlag
	if root == "" {
		var err error
		root, err = moduleRoot()
		if err != nil {
			fatal(err)
		}
	}
	findings, err := lint.Run(lint.DefaultConfig(root), patterns)
	if err != nil {
		fatal(err)
	}
	failing := lint.Unsuppressed(findings)

	if *jsonOut {
		out := struct {
			Findings     []lint.Finding `json:"findings"`
			Total        int            `json:"total"`
			Unsuppressed int            `json:"unsuppressed"`
		}{Findings: findings, Total: len(findings), Unsuppressed: len(failing)}
		if out.Findings == nil {
			out.Findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range failing {
			fmt.Println(f)
		}
		if n := len(findings) - len(failing); n > 0 {
			fmt.Fprintf(os.Stderr, "surfer-lint: %d finding(s) suppressed by //lint:allow pragmas (run -json to audit)\n", n)
		}
	}
	if len(failing) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "surfer-lint: %d unsuppressed finding(s)\n", len(failing))
		}
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("surfer-lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
