// surfer-metrics turns a captured raw event stream (surfer-run -events)
// into windowed time series and renders them — as a terminal sparkline
// dashboard by default, or as the deterministic series-set JSON, CSV, or
// Prometheus text exposition. The derived series are byte-identical to what
// a live collector (surfer-run -metrics) samples during the same run, so
// the dashboard, the alert engine and the autoscaler all read one set of
// numbers.
//
// Usage:
//
//	surfer-metrics -trace run.events                     # sparkline dashboard
//	surfer-metrics -trace run.events -window 0.5 -json   # series-set JSON
//	surfer-metrics -trace run.events -csv                # window-per-row CSV
//	surfer-metrics -trace run.events -prom               # Prometheus text format
//	surfer-metrics -trace run.events -rules slo.json     # evaluate SLO alerts
//	surfer-metrics -series run.series                    # re-render a series file
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("surfer-metrics: ")
	var (
		traceIn   = flag.String("trace", "", "raw event stream to derive series from (surfer-run -events)")
		seriesIn  = flag.String("series", "", "pre-exported series file to render (surfer-run -metrics output); alternative to -trace")
		window    = flag.Float64("window", 0, "window length in virtual seconds for -trace derivation (0 = makespan/32)")
		rulesPath = flag.String("rules", "", "JSON SLO alert rules to evaluate against the derived windows (needs -trace)")
		asJSON    = flag.Bool("json", false, "emit the deterministic series-set JSON instead of the dashboard")
		asCSV     = flag.Bool("csv", false, "emit window-per-row CSV instead of the dashboard")
		asProm    = flag.Bool("prom", false, "emit Prometheus text exposition (last-window gauges + whole-run sums) instead of the dashboard")
		match     = flag.String("match", "", "only render series whose name contains this substring")
		width     = flag.Int("width", 48, "sparkline width in columns (dashboard)")
	)
	flag.Parse()

	var set *metrics.Set
	var alerts []metrics.Alert
	switch {
	case *traceIn != "" && *seriesIn != "":
		log.Fatal("-trace and -series are alternatives; pass one")
	case *traceIn != "":
		set, alerts = derive(*traceIn, *window, *rulesPath)
	case *seriesIn != "":
		if *rulesPath != "" {
			log.Fatal("-rules needs -trace (alerts evaluate at window seals, which a flat series file no longer has)")
		}
		f, err := os.Open(*seriesIn)
		if err != nil {
			log.Fatal(err)
		}
		set, err = metrics.ReadSet(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", *seriesIn, err)
		}
	default:
		log.Fatal("pass -trace run.events (derive) or -series run.series (re-render)")
	}

	if *match != "" {
		kept := set.Series[:0]
		for _, s := range set.Series {
			if strings.Contains(s.Name, *match) {
				kept = append(kept, s)
			}
		}
		set.Series = kept
	}

	switch {
	case *asJSON:
		must(metrics.WriteSet(os.Stdout, set))
	case *asCSV:
		must(metrics.WriteCSV(os.Stdout, set))
	case *asProm:
		must(metrics.WriteProm(os.Stdout, set))
	default:
		dashboard(set, alerts, *width)
	}
}

// derive folds the captured stream into windowed series, exactly as a live
// collector with the same config would have.
func derive(path string, window float64, rulesPath string) (*metrics.Set, []metrics.Alert) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	s, err := trace.ReadEvents(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	var topo *cluster.Topology
	if s.Topo != nil {
		topo = cluster.NewTopologyFromMatrix(s.Topo.Name, s.Topo.Bandwidth)
	}
	if window <= 0 {
		// Auto-size to makespan/32. The stream clock (max Time) is the
		// makespan; span End fields are not used because a drain's End
		// carries its deadline, which can lie far past the run.
		makespan := 0.0
		for i := range s.Events {
			if s.Events[i].Time > makespan {
				makespan = s.Events[i].Time
			}
		}
		if makespan <= 0 {
			log.Fatalf("%s: empty stream; pass -window explicitly", path)
		}
		window = makespan / 32
	}
	var rules *metrics.RuleSet
	if rulesPath != "" {
		data, err := os.ReadFile(rulesPath)
		if err != nil {
			log.Fatalf("reading rules: %v", err)
		}
		if rules, err = metrics.ParseRules(data); err != nil {
			log.Fatal(err)
		}
	}
	set, alerts, err := metrics.FromEvents(s.Events, metrics.Config{Window: window, Topo: topo, Rules: rules})
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return set, alerts
}

// dashboard renders one sparkline row per series plus an alert transcript.
func dashboard(set *metrics.Set, alerts []metrics.Alert, width int) {
	fmt.Printf("%d series × %d windows of %gs\n", len(set.Series), set.Windows, set.Window)
	nameW := 0
	for i := range set.Series {
		if n := len(set.Series[i].Name); n > nameW {
			nameW = n
		}
	}
	for i := range set.Series {
		s := &set.Series[i]
		max, last := 0.0, 0.0
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
		if n := len(s.Values); n > 0 {
			last = s.Values[n-1]
		}
		fmt.Printf("  %-*s  %s  max %-10.4g last %.4g\n",
			nameW, s.Name, metrics.Sparkline(s.Values, width), max, last)
	}
	if len(alerts) == 0 {
		return
	}
	fmt.Printf("alerts (%d transition(s)):\n", len(alerts))
	for _, al := range alerts {
		state := "FIRED"
		if al.Resolved {
			state = "resolved"
		}
		fmt.Printf("  %-8s %s@%s  window %d (t=%.4g)  value %.4g\n",
			state, al.Rule, al.Series, al.Window, al.Time, al.Value)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
