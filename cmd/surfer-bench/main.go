// surfer-bench regenerates the paper's evaluation tables and figures on the
// simulated cluster and prints them in the paper's layout.
//
// Usage:
//
//	surfer-bench -experiment all
//	surfer-bench -experiment table1
//	surfer-bench -experiment fig9 -vertices 131072
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("surfer-bench: ")
	var (
		experiment  = flag.String("experiment", "all", "table1|table2|table3|table4|table5|fig6|fig7|fig9|fig10|fig11|fig12|cascade|ablation|parallel|multitenant|scale|all")
		vertices    = flag.Int("vertices", 1<<16, "synthetic graph vertices")
		sizes       = flag.String("sizes", "", "comma-separated vertex counts for the scale experiment (default: -vertices)")
		machines    = flag.Int("machines", 32, "machines in the simulated cluster")
		levels      = flag.Int("levels", 6, "log2 of partition count")
		seed        = flag.Int64("seed", 42, "random seed")
		iterations  = flag.Int("iterations", 3, "iterations for the cascade study")
		workers     = flag.Int("workers", 0, "compute worker pool size (0 = GOMAXPROCS, 1 = serial); results are identical for every value")
		parallelOut = flag.String("parallel-out", "BENCH_parallel.json", "output file for the parallel experiment")
		appsDir     = flag.String("appsdir", "", "path to internal/apps for table4 (auto-detected)")
		traceOut    = flag.String("trace", "", "write a Chrome trace_event JSON timeline of every simulated run to this file")
		eventsOut   = flag.String("events", "", "write the raw event stream of every simulated run to this file for surfer-analyze")
		jsonOut     = flag.String("json", "", "write a machine-readable bench report (surfer-bench/v1 schema) to this file for surfer-analyze -compare")
		faultsPath  = flag.String("faults", "", "JSON fault-schedule file (kills, degraded links, drop windows, slowdowns) injected into every simulated run")
		promOut     = flag.String("prom", "", "write Prometheus text exposition of the windowed metrics derived from every simulated run's events to this file (the wall-clock scrape bridge; see docs/METRICS.md §8)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU pprof profile of the bench process to this file (go tool pprof; see docs/TUNING.md)")
		memProfile  = flag.String("memprofile", "", "write a heap pprof profile at exit to this file (go tool pprof)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpu profile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpu profile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatalf("cpu profile: %v", err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatalf("heap profile: %v", err)
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("heap profile: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("heap profile: %v", err)
			}
		}()
	}

	var rec *trace.Recorder
	if *traceOut != "" || *eventsOut != "" || *promOut != "" {
		rec = trace.NewRecorder()
	}
	var jsonReport *bench.Report
	if *jsonOut != "" {
		jsonReport = bench.NewReport()
	}
	s := bench.Scale{Vertices: *vertices, Levels: *levels, Machines: *machines, Seed: *seed, Workers: *workers, Trace: rec}
	if *faultsPath != "" {
		ff, err := fault.Load(*faultsPath)
		if err != nil {
			log.Fatal(err)
		}
		// Validate the whole file — not just the transient Schedule — so a
		// kill of a machine outside the topology fails loudly here instead
		// of silently running fault-free (Schedule() does not carry kills).
		if err := ff.Validate(*machines); err != nil {
			log.Fatal(err)
		}
		s.Faults = ff.Schedule()
		for _, k := range ff.KillList() {
			s.Failures = append(s.Failures, engine.Failure{Machine: k.Machine, At: k.At})
		}
	}
	dir := *appsDir
	if dir == "" {
		dir = bench.FindAppsDir("internal/apps", "../internal/apps", "../../internal/apps")
	}
	want := strings.ToLower(*experiment)
	run := func(name string, fn func() error) {
		if want != "all" && want != name {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("[%s took %.1fs]\n\n", name, time.Since(start).Seconds())
	}

	var cells23 []bench.AppLevelMetrics
	tables23 := func() error {
		if cells23 != nil {
			return nil
		}
		var err error
		cells23, err = bench.Tables23(s)
		if err == nil && jsonReport != nil {
			jsonReport.Merge(bench.FromTables23(cells23))
		}
		return err
	}

	run("table1", func() error {
		rows, err := bench.Table1(s)
		if err != nil {
			return err
		}
		bench.WriteTable1(os.Stdout, rows)
		if jsonReport != nil {
			jsonReport.Merge(bench.FromTable1(rows))
		}
		return nil
	})
	run("table2", func() error {
		if err := tables23(); err != nil {
			return err
		}
		bench.WriteTable2(os.Stdout, cells23)
		return nil
	})
	run("table3", func() error {
		if err := tables23(); err != nil {
			return err
		}
		bench.WriteTable3(os.Stdout, cells23)
		return nil
	})
	run("table4", func() error {
		rows, err := bench.Table4(dir)
		if err != nil {
			return err
		}
		bench.WriteTable4(os.Stdout, rows)
		return nil
	})
	run("table5", func() error {
		rows, err := bench.Table5(s)
		if err != nil {
			return err
		}
		bench.WriteTable5(os.Stdout, rows)
		return nil
	})
	run("fig6", func() error {
		rows, err := bench.Fig6(s)
		if err != nil {
			return err
		}
		bench.WriteFig6(os.Stdout, rows)
		return nil
	})
	run("fig7", func() error {
		rows, err := bench.Fig7(s)
		if err != nil {
			return err
		}
		bench.WriteFig7(os.Stdout, rows)
		return nil
	})
	run("fig9", func() error {
		rows, err := bench.Fig9(s)
		if err != nil {
			return err
		}
		bench.WriteFig9(os.Stdout, rows)
		return nil
	})
	run("fig10", func() error {
		res, err := bench.Fig10(s)
		if err != nil {
			return err
		}
		bench.WriteFig10(os.Stdout, res)
		return nil
	})
	runScaling := func() error {
		rows, err := bench.Fig11And12(s)
		if err != nil {
			return err
		}
		bench.WriteFig11And12(os.Stdout, rows)
		return nil
	}
	run("fig11", runScaling)
	if want == "fig12" {
		run("fig12", runScaling)
	}
	run("cascade", func() error {
		res, err := bench.Cascade(s, *iterations)
		if err != nil {
			return err
		}
		bench.WriteCascade(os.Stdout, res)
		return nil
	})
	// The parallel wall-clock benchmark runs only when asked for: unlike
	// the paper experiments it measures the host machine, not the
	// simulated cluster, so it has no place in "-experiment all".
	if want == "parallel" {
		run("parallel", func() error {
			res, err := bench.ParallelBench(bench.ParallelConfig{
				Scale: 17, EdgeFactor: 8, Levels: 4, Machines: 16,
				Iterations: 10, Workers: *workers, Seed: *seed,
			})
			if err != nil {
				return err
			}
			bench.WriteParallel(os.Stdout, res)
			if err := bench.WriteParallelJSON(*parallelOut, res); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *parallelOut)
			if jsonReport != nil {
				jsonReport.Merge(bench.FromParallel(res))
			}
			return nil
		})
	}
	// The multi-tenant experiment is deterministic virtual time but runs the
	// whole workload three times (once per policy), so like parallel it runs
	// only when asked for.
	if want == "multitenant" {
		run("multitenant", func() error {
			mt := bench.DefaultMultitenantConfig()
			mt.Scale.Vertices = *vertices
			mt.Scale.Levels = *levels
			mt.Scale.Machines = *machines
			mt.Scale.Seed = *seed
			mt.Scale.Workers = *workers
			mt.Scale.Trace = rec
			mt.Scale.Faults = s.Faults
			mt.Scale.Retry = s.Retry
			rows, err := bench.Multitenant(mt)
			if err != nil {
				return err
			}
			bench.WriteMultitenant(os.Stdout, rows)
			if jsonReport != nil {
				jsonReport.Merge(bench.FromMultitenant(rows))
			}
			return nil
		})
	}
	// The scale experiment measures host wall-clock phase timings besides
	// the gated virtual metrics, so like parallel it runs only when asked.
	if want == "scale" {
		run("scale", func() error {
			ns := []int{*vertices}
			if *sizes != "" {
				ns = ns[:0]
				for _, f := range strings.Split(*sizes, ",") {
					var n int
					if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err != nil || n <= 0 {
						return fmt.Errorf("bad -sizes entry %q", f)
					}
					ns = append(ns, n)
				}
			}
			rows, err := bench.ScaleExperiment(s, ns, bench.AdaptiveConfig{})
			if err != nil {
				return err
			}
			bench.WriteScale(os.Stdout, rows)
			if jsonReport != nil {
				jsonReport.Merge(bench.FromScale(rows))
			}
			return nil
		})
	}
	run("ablation", func() error {
		rows, err := bench.Ablation(s)
		if err != nil {
			return err
		}
		bench.WriteAblation(os.Stdout, rows)
		return nil
	})

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("writing trace: %v", err)
		}
		if err := trace.WriteChrome(f, rec.Events()); err != nil {
			f.Close()
			log.Fatalf("writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("writing trace: %v", err)
		}
		fmt.Printf("wrote %s (%d events)\n", *traceOut, rec.Len())
	}
	if *eventsOut != "" {
		// The bench harness runs many deployments over different topologies,
		// so the combined stream carries no single topology header; the
		// analyzer simply skips its link-utilization section.
		f, err := os.Create(*eventsOut)
		if err != nil {
			log.Fatalf("writing events: %v", err)
		}
		if err := trace.WriteEvents(f, nil, rec.Events()); err != nil {
			f.Close()
			log.Fatalf("writing events: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("writing events: %v", err)
		}
		fmt.Printf("wrote %s (%d events)\n", *eventsOut, rec.Len())
	}
	if *promOut != "" {
		// The combined stream spans every run the experiment performed, so
		// the exposition aggregates across them — a scrape-style summary of
		// the whole bench invocation, not a per-run determinism artifact.
		makespan := 0.0
		for _, ev := range rec.Events() {
			if ev.Time > makespan {
				makespan = ev.Time
			}
		}
		if makespan <= 0 {
			makespan = 1
		}
		set, _, err := metrics.FromEvents(rec.Events(), metrics.Config{Window: makespan / 32})
		if err != nil {
			log.Fatalf("deriving metrics: %v", err)
		}
		f, err := os.Create(*promOut)
		if err != nil {
			log.Fatalf("writing prom: %v", err)
		}
		if err := metrics.WriteProm(f, set); err != nil {
			f.Close()
			log.Fatalf("writing prom: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("writing prom: %v", err)
		}
		fmt.Printf("wrote %s (%d series)\n", *promOut, len(set.Series))
	}
	if jsonReport != nil {
		if err := jsonReport.Validate(); err != nil {
			log.Fatalf("bench report: %v", err)
		}
		if err := bench.WriteReport(*jsonOut, jsonReport); err != nil {
			log.Fatalf("writing bench report: %v", err)
		}
		fmt.Printf("wrote %s (%d entries)\n", *jsonOut, len(jsonReport.Entries))
	}
}
