// surfer-submit drives the multi-tenant job service: it generates seeded
// arrival workloads ("surfer-jobs" files) and replays them through the
// shared-cluster scheduler under a chosen policy, printing per-job latency,
// wait, and fairness.
//
// Usage:
//
//	surfer-submit -gen 20 -tenants 4 -seed 7 -out jobs.json
//	surfer-submit -jobs jobs.json -policy fair -concurrency 2
//	surfer-submit -jobs jobs.json -policy priority -queue-limit 4 -events ev.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/jobsvc"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("surfer-submit: ")
	var (
		gen         = flag.Int("gen", 0, "generate a workload of this many jobs and write it to -out")
		tenants     = flag.Int("tenants", 3, "tenant count for -gen")
		maxPriority = flag.Int("max-priority", 2, "highest priority for -gen")
		out         = flag.String("out", "jobs.json", "output path for -gen")
		jobsPath    = flag.String("jobs", "", "workload file to plan and run")
		policyName  = flag.String("policy", "fifo", "scheduling policy: fifo, fair, priority")
		concurrency = flag.Int("concurrency", 2, "concurrent job slots")
		queueLimit  = flag.Int("queue-limit", 0, "admission queue bound (0 = unlimited)")
		vertices    = flag.Int("vertices", 1<<12, "synthetic graph vertices of the shared deployment")
		machines    = flag.Int("machines", 8, "machines in the shared T3 cluster")
		levels      = flag.Int("levels", 4, "log2 of partition count")
		seed        = flag.Int64("seed", 42, "random seed (generation, partitioning, topology)")
		workers     = flag.Int("workers", 0, "planning worker pool size (0 = GOMAXPROCS, 1 = serial); results are identical for every value")
		faultsPath  = flag.String("faults", "", "JSON fault-schedule file injected into the run")
		eventsOut   = flag.String("events", "", "write the raw event stream (with topology header) to this file for surfer-analyze")
	)
	flag.Parse()

	if *gen > 0 {
		wl := jobsvc.GenerateWorkload(jobsvc.GenConfig{
			Jobs:        *gen,
			Tenants:     *tenants,
			MaxPriority: *maxPriority,
			Seed:        *seed,
		})
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := jobsvc.WriteWorkload(f, wl); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d jobs, %d tenants)\n", *out, len(wl.Jobs), *tenants)
		return
	}
	if *jobsPath == "" {
		log.Fatal("nothing to do: pass -gen N to generate a workload or -jobs FILE to run one")
	}

	pol, err := jobsvc.ParsePolicy(*policyName)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(*jobsPath)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := jobsvc.ReadWorkload(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	topo := cluster.NewT3(*machines, *seed)
	g := graph.Social(graph.DefaultSocial(*vertices, *seed))
	planner, err := jobsvc.NewPlanner(jobsvc.PlannerConfig{
		Graph: g, Topo: topo, Levels: *levels, Seed: *seed, Workers: *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := planner.Jobs(wl)
	if err != nil {
		log.Fatal(err)
	}

	cfg := jobsvc.Config{
		Topo:        topo,
		Policy:      pol,
		Concurrency: *concurrency,
		QueueLimit:  *queueLimit,
	}
	if *faultsPath != "" {
		ff, err := fault.Load(*faultsPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Faults = ff.Schedule()
		if len(ff.KillList()) != 0 {
			log.Fatal("the job service handles transient faults only; remove kills from the schedule")
		}
	}
	var rec *trace.Recorder
	if *eventsOut != "" {
		rec = trace.NewRecorder()
		cfg.Trace = rec
	}

	recs, err := jobsvc.Run(cfg, jobs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cluster: %s; policy: %s; concurrency: %d; %d jobs from %s\n",
		topo, pol, cfg.Concurrency, len(jobs), *jobsPath)
	fmt.Printf("%-10s %-10s %4s %10s %12s %12s %8s\n",
		"job", "tenant", "prio", "status", "wait(s)", "latency(s)", "preempt")
	for _, r := range recs {
		status := "done"
		if r.Rejected {
			status = "rejected"
		}
		fmt.Printf("%-10s %-10s %4d %10s %12.4f %12.4f %8d\n",
			r.ID, r.Tenant, r.Priority, status, r.WaitSeconds(), r.Latency(), r.Preemptions)
	}
	names, service := jobsvc.TenantService(recs)
	fmt.Printf("p50 latency: %.4f s, p99 latency: %.4f s, mean wait: %.4f s\n",
		jobsvc.LatencyPercentile(recs, 0.50), jobsvc.LatencyPercentile(recs, 0.99), jobsvc.MeanWait(recs))
	fmt.Printf("Jain fairness over %d tenants: %.3f\n", len(names), jobsvc.JainIndex(service))

	if *eventsOut != "" {
		ef, err := os.Create(*eventsOut)
		if err != nil {
			log.Fatal(err)
		}
		ti := &trace.TopoInfo{Name: topo.Name(), Machines: topo.NumMachines(), Bandwidth: topo.BandwidthMatrix()}
		if err := trace.WriteEvents(ef, ti, rec.Events()); err != nil {
			ef.Close()
			log.Fatal(err)
		}
		if err := ef.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("events: %s (%d events)\n", *eventsOut, rec.Len())
	}
}
