// surfer-run executes one of the paper's six benchmark applications on a
// graph over the simulated cluster, with either primitive, and prints the
// response time, total machine time, and I/O metrics.
//
// Usage:
//
//	surfer-run -graph graph.srfg -app nr -primitive propagation -opt o4
//	surfer-run -graph graph.srfg -app tfl -primitive mapreduce
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/storage"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("surfer-run: ")
	var (
		graphPath  = flag.String("graph", "graph.srfg", "input graph file")
		appName    = flag.String("app", "nr", "application: vdd, rs, nr, rlg, tc, tfl, cc, sssp")
		primitive  = flag.String("primitive", "propagation", "propagation or mapreduce")
		optLevel   = flag.String("opt", "o4", "optimization level o1..o4 (propagation)")
		machines   = flag.Int("machines", 32, "number of machines")
		topoKind   = flag.String("topology", "t1", "topology: t1, t2, t3")
		pods       = flag.Int("pods", 2, "pods (t2)")
		levels     = flag.Int("levels", 6, "log2 of partition count")
		seed       = flag.Int64("seed", 42, "random seed")
		workers    = flag.Int("workers", 0, "compute worker pool size (0 = GOMAXPROCS, 1 = serial); results are identical for every value")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON timeline of the run to this file (open in chrome://tracing or Perfetto)")
		eventsOut  = flag.String("events", "", "write the raw event stream (with topology header) to this file for surfer-analyze / surfer-trace -breakdown")
		failSpec   = flag.String("fail", "", "comma-separated machine deaths as machine@time (virtual seconds), e.g. 2@1.5,7@3, or a .json fault-schedule file (kills, link faults, slowdowns, joins, drains); failed partitions fail over to replicas")
		heartbeat  = flag.Float64("heartbeat", 0, "failure-detection latency in virtual seconds (0 = engine default, 1s)")
		metricsOut = flag.String("metrics", "", "sample windowed time series live during the run and write the series set to this file (surfer-metrics reads it, or derives the identical set from -events output)")
		metricsWin = flag.Float64("metrics-window", 0.25, "metrics window length in virtual seconds")
		rulesPath  = flag.String("rules", "", "JSON SLO alert rules evaluated live at every window seal; fired/resolved alerts land in the event stream (needs -metrics)")
	)
	flag.Parse()

	g, err := graph.Load(*graphPath)
	if err != nil {
		log.Fatalf("loading graph: %v", err)
	}
	var topo *cluster.Topology
	switch *topoKind {
	case "t1":
		topo = cluster.NewT1(*machines)
	case "t2":
		topo = cluster.NewT2(cluster.T2Config{Machines: *machines, Pods: *pods, Levels: 1})
	case "t3":
		topo = cluster.NewT3(*machines, *seed)
	default:
		log.Fatalf("unknown topology %q", *topoKind)
	}

	var failures []engine.Failure
	var faults *fault.Schedule
	if strings.HasSuffix(*failSpec, ".json") {
		ff, err := fault.Load(*failSpec)
		if err != nil {
			log.Fatal(err)
		}
		// Joins may provision machines past the base topology: expand it so
		// the dormant machines exist in the bandwidth matrix before they join.
		if mm := ff.MaxMachine(); mm >= topo.NumMachines() {
			topo = topo.Expand(mm + 1 - topo.NumMachines())
		}
		if err := ff.Validate(topo.NumMachines()); err != nil {
			log.Fatal(err)
		}
		for _, k := range ff.KillList() {
			failures = append(failures, engine.Failure{Machine: k.Machine, At: k.At})
		}
		faults = ff.Schedule()
	} else if failures, err = parseFailures(*failSpec); err != nil {
		log.Fatal(err)
	}

	app := findApp(*appName)
	if app == nil {
		log.Fatalf("unknown app %q (want vdd, rs, nr, rlg, tc or tfl)", *appName)
	}

	pt, sk := partition.RecursiveBisect(g, *levels, partition.Options{Seed: *seed})
	pg, err := storage.Build(g, pt)
	if err != nil {
		log.Fatal(err)
	}
	var rec *trace.Recorder
	if *traceOut != "" || *eventsOut != "" || *metricsOut != "" {
		rec = trace.NewRecorder()
	}
	var col *metrics.Collector
	if *metricsOut != "" {
		var rules *metrics.RuleSet
		if *rulesPath != "" {
			data, err := os.ReadFile(*rulesPath)
			if err != nil {
				log.Fatalf("reading rules: %v", err)
			}
			if rules, err = metrics.ParseRules(data); err != nil {
				log.Fatal(err)
			}
		}
		col, err = metrics.NewCollector(metrics.Config{Window: *metricsWin, Topo: topo, Rules: rules})
		if err != nil {
			log.Fatal(err)
		}
		col.Attach(rec)
	} else if *rulesPath != "" {
		log.Fatal("-rules needs -metrics (rules evaluate against the live series)")
	}
	s := bench.Scale{
		Vertices: g.NumVertices(), Levels: *levels, Machines: topo.NumMachines(),
		Seed: *seed, Workers: *workers, Trace: rec,
		Failures: failures, Heartbeat: *heartbeat, Faults: faults,
	}
	placeBA := partition.SketchPlacement(sk, topo)
	d := &bench.Deployment{
		Scale: s, Graph: g, PG: pg, Sk: sk, Topo: topo,
		PlacePM:  partition.RandomPlacement(pt.P, topo, *seed),
		PlaceBA:  placeBA,
		Replicas: storage.PlaceReplicas(placeBA, topo, *seed),
	}
	if err := engine.ValidateFailures(failures, topo, d.Replicas); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: %d vertices, %d edges; cluster: %s; app: %s (%d iteration(s))\n",
		g.NumVertices(), g.NumEdges(), topo, app.Name(), app.Iterations())
	switch *primitive {
	case "propagation":
		lvl := parseOpt(*optLevel)
		m, err := d.RunApp(app, lvl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("primitive: propagation (%v)\n", lvl)
		printMetrics(m.ResponseSeconds, m.MachineSeconds, m.NetworkBytes, m.DiskBytes)
		printElastic(m)
	case "mapreduce":
		m, err := d.RunAppMR(app)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("primitive: mapreduce")
		printMetrics(m.ResponseSeconds, m.MachineSeconds, m.NetworkBytes, m.DiskBytes)
		printElastic(m)
	default:
		log.Fatalf("unknown primitive %q", *primitive)
	}
	if *metricsOut != "" {
		// Finish seals the remaining windows — final alert transitions are
		// emitted here, so it must precede the trace/event writers.
		set := col.Finish()
		if err := writeSeries(*metricsOut, set); err != nil {
			log.Fatalf("writing metrics: %v", err)
		}
		fired := 0
		for _, al := range col.Alerts() {
			if !al.Resolved {
				fired++
			}
		}
		fmt.Printf("metrics:            %s (%d series × %d windows, %d alert(s) fired)\n",
			*metricsOut, len(set.Series), set.Windows, fired)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, rec); err != nil {
			log.Fatalf("writing trace: %v", err)
		}
		fmt.Printf("trace:              %s (%d events)\n", *traceOut, rec.Len())
	}
	if *eventsOut != "" {
		if err := writeEvents(*eventsOut, rec, topo); err != nil {
			log.Fatalf("writing events: %v", err)
		}
		fmt.Printf("events:             %s (%d events)\n", *eventsOut, rec.Len())
	}
}

func writeSeries(path string, set *metrics.Set) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := metrics.WriteSet(f, set); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseFailures decodes the -fail flag: a comma-separated list of
// machine@time entries, each scheduling a permanent machine death at a
// virtual time.
func parseFailures(spec string) ([]engine.Failure, error) {
	if spec == "" {
		return nil, nil
	}
	var out []engine.Failure
	for _, entry := range strings.Split(spec, ",") {
		mStr, tStr, ok := strings.Cut(strings.TrimSpace(entry), "@")
		if !ok {
			return nil, fmt.Errorf("bad -fail entry %q (want machine@time, e.g. 2@1.5)", entry)
		}
		m, err := strconv.Atoi(mStr)
		if err != nil {
			return nil, fmt.Errorf("bad machine in -fail entry %q: %v", entry, err)
		}
		at, err := strconv.ParseFloat(tStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad time in -fail entry %q: %v", entry, err)
		}
		out = append(out, engine.Failure{Machine: cluster.MachineID(m), At: at})
	}
	return out, nil
}

func writeTrace(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, rec.Events()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeEvents(path string, rec *trace.Recorder, topo *cluster.Topology) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	ti := &trace.TopoInfo{Name: topo.Name(), Machines: topo.NumMachines(), Bandwidth: topo.BandwidthMatrix()}
	if err := trace.WriteEvents(f, ti, rec.Events()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func findApp(name string) apps.App {
	for _, a := range apps.All() {
		if strings.EqualFold(a.Name(), name) {
			return a
		}
	}
	switch strings.ToLower(name) {
	case "cc":
		return apps.NewCC(50)
	case "sssp":
		return apps.NewSSSP(0, 100)
	}
	return nil
}

func parseOpt(s string) bench.OptLevel {
	switch strings.ToLower(s) {
	case "o1":
		return bench.O1
	case "o2":
		return bench.O2
	case "o3":
		return bench.O3
	case "o4":
		return bench.O4
	default:
		log.Fatalf("unknown optimization level %q (want o1..o4)", s)
		return bench.O1
	}
}

func printMetrics(resp, machine float64, net, disk int64) {
	fmt.Printf("response time:      %.4f s\n", resp)
	fmt.Printf("total machine time: %.4f s\n", machine)
	fmt.Printf("network I/O:        %.2f MB\n", float64(net)/1e6)
	fmt.Printf("disk I/O:           %.2f MB\n", float64(disk)/1e6)
}

// printElastic reports membership changes and live migrations, only when the
// run actually had any (the common fault-free run stays four lines).
func printElastic(m engine.Metrics) {
	if m.Joins == 0 && m.Drains == 0 && m.Migrations == 0 {
		return
	}
	fmt.Printf("elasticity:         %d join(s), %d drain(s), %d migration(s) (%.2f MB)\n",
		m.Joins, m.Drains, m.Migrations, float64(m.MigrationBytes)/1e6)
}
