// surfer-trace validates and summarizes trace files. It understands both
// export formats: the Chrome trace_event JSON written by -trace (a
// rendering for chrome://tracing) and the raw event stream written by
// -events (the exact engine stream, causal edges included). The format is
// sniffed from the file, structural invariants are checked, and a short
// summary is printed; a malformed file exits nonzero, which makes the tool
// usable as a CI gate.
//
// Usage:
//
//	surfer-trace -in trace.json
//	surfer-trace -in run.events -breakdown
//
// -breakdown prints the job → stage → machine accounting table
// (trace.Summarize) and needs the raw stream; Chrome exports drop the
// information it is computed from.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/trace"
)

// traceFile mirrors the Chrome exporter's top-level object.
type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// traceEvent carries the fields surfer-trace checks; unknown fields are
// ignored so the format can grow.
type traceEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Cat  string          `json:"cat"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Ts   float64         `json:"ts"`
	Dur  *float64        `json:"dur"`
	Args json.RawMessage `json:"args"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("surfer-trace: ")
	in := flag.String("in", "", "trace file to validate (Chrome trace_event JSON or raw event stream)")
	breakdown := flag.Bool("breakdown", false, "print the job→stage→machine accounting table (raw event streams only)")
	flag.Parse()
	if *in == "" {
		log.Fatal("missing -in trace.json")
	}

	data, err := os.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}

	if isRawStream(data) {
		checkRaw(*in, data, *breakdown)
		return
	}
	if *breakdown {
		log.Fatalf("%s: -breakdown needs a raw event stream (surfer-run -events); Chrome exports drop the event fields it is computed from", *in)
	}
	checkChrome(*in, data)
}

// isRawStream sniffs the raw-trace format marker without committing to a
// full parse.
func isRawStream(data []byte) bool {
	var probe struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	return probe.Format == trace.StreamFormat
}

// checkRaw validates a raw event stream (ReadEvents enforces the seq/cause
// invariants) and summarizes it; with breakdown it prints the full
// job → stage → machine table.
func checkRaw(path string, data []byte, breakdown bool) {
	s, err := trace.ReadEvents(bytes.NewReader(data))
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	var maxEnd float64
	for i := range s.Events {
		if t := s.Events[i].Time; t > maxEnd {
			maxEnd = t
		}
		if e := s.Events[i].End; e > maxEnd {
			maxEnd = e
		}
	}
	fmt.Printf("%s: OK (raw event stream v%d)\n", path, s.Version)
	fmt.Printf("events:    %d\n", len(s.Events))
	if s.Topo != nil {
		fmt.Printf("topology:  %s (%d machines)\n", s.Topo.Name, s.Topo.Machines)
	}
	fmt.Printf("time span: %.3f ms virtual\n", maxEnd*1e3)
	if breakdown {
		fmt.Println()
		printBreakdown(trace.Summarize(s.Events))
	}
}

// printBreakdown renders the Summarize hierarchy as text.
func printBreakdown(b *trace.Breakdown) {
	fmt.Printf("breakdown (job -> stage -> machine)\n")
	for _, jb := range b.Jobs {
		fmt.Printf("job %-24s [%10.6f .. %10.6f]\n", jb.Name, jb.Begin, jb.End)
		for _, sb := range jb.Stages {
			fmt.Printf("  stage %-20s [%10.6f .. %10.6f]\n", sb.Name, sb.Begin, sb.End)
			for _, mb := range sb.Machines {
				fmt.Printf("    m%-3d compute=%.6fs tasks=%d egress=%dB/%.6fs ingress=%dB/%.6fs stall=%.6fs incast=%.6fs",
					mb.Machine, mb.ComputeSeconds, mb.TasksRun,
					mb.EgressBytes, mb.EgressBusySeconds,
					mb.IngressBytes, mb.IngressBusySeconds,
					mb.StallSeconds, mb.IncastStallSeconds)
				if mb.Retries > 0 {
					fmt.Printf(" retries=%d", mb.Retries)
				}
				if mb.TasksLost > 0 {
					fmt.Printf(" lost=%d", mb.TasksLost)
				}
				if mb.TransferDrops > 0 {
					fmt.Printf(" drops=%d dropstall=%.6fs", mb.TransferDrops, mb.DropStallSeconds)
				}
				if mb.TransferRetries > 0 {
					fmt.Printf(" xfer-retries=%d", mb.TransferRetries)
				}
				if mb.Speculations > 0 {
					fmt.Printf(" speculations=%d", mb.Speculations)
				}
				if mb.Failed {
					fmt.Printf(" FAILED")
				}
				fmt.Printf("\n")
			}
		}
	}
	if b.Checkpoints > 0 {
		fmt.Printf("checkpoints: %d (%s)\n", b.Checkpoints, strings.Join(b.CheckpointJobs, ", "))
	}
	if b.Restores > 0 {
		fmt.Printf("restores:    %d (%s)\n", b.Restores, strings.Join(b.RestoreJobs, ", "))
	}
}

// checkChrome validates a Chrome trace_event export.
func checkChrome(path string, data []byte) {
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		log.Fatalf("%s: invalid JSON: %v", path, err)
	}
	if len(tf.TraceEvents) == 0 {
		log.Fatalf("%s: no trace events", path)
	}

	byPhase := map[string]int{}
	pids := map[int]bool{}
	var spans, instants int
	var maxEnd float64
	for i, ev := range tf.TraceEvents {
		byPhase[ev.Ph]++
		switch ev.Ph {
		case "X":
			if ev.Dur == nil {
				log.Fatalf("%s: event %d (%q): complete event without dur", path, i, ev.Name)
			}
			if *ev.Dur < 0 {
				log.Fatalf("%s: event %d (%q): negative duration %v", path, i, ev.Name, *ev.Dur)
			}
			if end := ev.Ts + *ev.Dur; end > maxEnd {
				maxEnd = end
			}
			spans++
		case "i":
			instants++
		case "M":
			// metadata events carry no timing
		default:
			log.Fatalf("%s: event %d (%q): unexpected phase %q", path, i, ev.Name, ev.Ph)
		}
		if ev.Ph != "M" {
			if ev.Ts < 0 {
				log.Fatalf("%s: event %d (%q): negative timestamp %v", path, i, ev.Name, ev.Ts)
			}
			pids[ev.Pid] = true
		}
	}

	fmt.Printf("%s: OK\n", path)
	fmt.Printf("events:    %d (%d spans, %d instants, %d metadata)\n",
		len(tf.TraceEvents), spans, instants, byPhase["M"])
	fmt.Printf("processes: %d\n", len(pids))
	fmt.Printf("time span: %.3f ms virtual\n", maxEnd/1e3)
}
