// surfer-trace validates and summarizes a Chrome trace_event JSON file
// produced by surfer-run -trace or surfer-bench -trace. It parses the file,
// checks the structural invariants of the exporter (required fields per
// phase type, non-negative timestamps and durations), and prints a short
// summary. A malformed file exits nonzero, which makes the tool usable as a
// CI gate.
//
// Usage:
//
//	surfer-trace -in trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
)

// traceFile mirrors the exporter's top-level object.
type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// traceEvent carries the fields surfer-trace checks; unknown fields are
// ignored so the format can grow.
type traceEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Cat  string          `json:"cat"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Ts   float64         `json:"ts"`
	Dur  *float64        `json:"dur"`
	Args json.RawMessage `json:"args"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("surfer-trace: ")
	in := flag.String("in", "", "Chrome trace_event JSON file to validate")
	flag.Parse()
	if *in == "" {
		log.Fatal("missing -in trace.json")
	}

	data, err := os.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		log.Fatalf("%s: invalid JSON: %v", *in, err)
	}
	if len(tf.TraceEvents) == 0 {
		log.Fatalf("%s: no trace events", *in)
	}

	byPhase := map[string]int{}
	pids := map[int]bool{}
	var spans, instants int
	var maxEnd float64
	for i, ev := range tf.TraceEvents {
		byPhase[ev.Ph]++
		switch ev.Ph {
		case "X":
			if ev.Dur == nil {
				log.Fatalf("%s: event %d (%q): complete event without dur", *in, i, ev.Name)
			}
			if *ev.Dur < 0 {
				log.Fatalf("%s: event %d (%q): negative duration %v", *in, i, ev.Name, *ev.Dur)
			}
			if end := ev.Ts + *ev.Dur; end > maxEnd {
				maxEnd = end
			}
			spans++
		case "i":
			instants++
		case "M":
			// metadata events carry no timing
		default:
			log.Fatalf("%s: event %d (%q): unexpected phase %q", *in, i, ev.Name, ev.Ph)
		}
		if ev.Ph != "M" {
			if ev.Ts < 0 {
				log.Fatalf("%s: event %d (%q): negative timestamp %v", *in, i, ev.Name, ev.Ts)
			}
			pids[ev.Pid] = true
		}
	}

	fmt.Printf("%s: OK\n", *in)
	fmt.Printf("events:    %d (%d spans, %d instants, %d metadata)\n",
		len(tf.TraceEvents), spans, instants, byPhase["M"])
	fmt.Printf("processes: %d\n", len(pids))
	fmt.Printf("time span: %.3f ms virtual\n", maxEnd/1e3)
}
