// surfer-part partitions a graph for a simulated cluster topology and
// prints the partition-sketch quality and the estimated distributed
// partitioning time for both the bandwidth-aware algorithm and the
// bandwidth-oblivious baseline.
//
// Usage:
//
//	surfer-part -graph graph.srfg -machines 32 -topology t2 -pods 2 -levels 6
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	surfer "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("surfer-part: ")
	var (
		graphPath = flag.String("graph", "graph.srfg", "input graph file")
		machines  = flag.Int("machines", 32, "number of machines")
		topoKind  = flag.String("topology", "t1", "topology: t1, t2, t3")
		pods      = flag.Int("pods", 2, "pods (t2)")
		treeLvls  = flag.Int("tree-levels", 1, "switch levels above pods (t2)")
		levels    = flag.Int("levels", 6, "log2 of partition count")
		seed      = flag.Int64("seed", 42, "random seed")
		outDir    = flag.String("outdir", "", "write the bandwidth-aware partitions to this directory")
		dotPath   = flag.String("dot", "", "write the partition sketch as Graphviz DOT to this file")
	)
	flag.Parse()

	g, err := surfer.LoadGraph(*graphPath)
	if err != nil {
		log.Fatalf("loading graph: %v", err)
	}
	topo := makeTopology(*topoKind, *machines, *pods, *treeLvls, *seed)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("cluster: %s\n", topo)

	cm := surfer.DefaultPartitionCostModel()
	for _, strat := range []surfer.PartitionStrategy{surfer.StrategyBandwidthAware, surfer.StrategyParMetis} {
		sys, err := surfer.Build(surfer.Config{
			Graph: g, Topology: topo, Levels: *levels, Strategy: strat, Seed: *seed,
		})
		if err != nil {
			log.Fatalf("%v: %v", strat, err)
		}
		if *outDir != "" && strat == surfer.StrategyBandwidthAware {
			if err := sys.PG.SaveDir(*outDir); err != nil {
				log.Fatalf("writing partitions: %v", err)
			}
			fmt.Printf("wrote %d partition files to %s\n", sys.PG.Part.P, *outDir)
		}
		if *dotPath != "" && strat == surfer.StrategyBandwidthAware {
			f, err := os.Create(*dotPath)
			if err != nil {
				log.Fatalf("creating %s: %v", *dotPath, err)
			}
			if err := sys.Sketch.WriteDOT(f, g, sys.Placement); err != nil {
				log.Fatalf("writing DOT: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote partition sketch to %s\n", *dotPath)
		}
		fmt.Printf("\n%v:\n", strat)
		fmt.Printf("  partitions:          %d\n", sys.PG.Part.P)
		fmt.Printf("  inner edge ratio:    %.1f%%\n", 100*sys.InnerEdgeRatio())
		fmt.Printf("  cross edges:         %d\n", sys.PG.TotalCrossEdges())
		fmt.Printf("  est. elapsed time:   %.3f s\n", sys.PartitioningTime(cm))
		var inner, total int64
		for _, pi := range sys.PG.Parts {
			inner += pi.InnerVertices
			total += int64(pi.NumVertices())
		}
		fmt.Printf("  inner vertex ratio:  %.1f%%\n", 100*float64(inner)/float64(total))
	}
}

func makeTopology(kind string, machines, pods, treeLevels int, seed int64) *surfer.Topology {
	switch kind {
	case "t1":
		return surfer.NewT1(machines)
	case "t2":
		return surfer.NewT2(surfer.T2Config{Machines: machines, Pods: pods, Levels: treeLevels})
	case "t3":
		return surfer.NewT3(machines, seed)
	default:
		log.Fatalf("unknown topology %q (want t1, t2 or t3)", kind)
		return nil
	}
}
