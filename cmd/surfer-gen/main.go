// surfer-gen generates synthetic graphs in the Surfer binary format.
//
// Usage:
//
//	surfer-gen -kind social -vertices 65536 -seed 42 -out graph.srfg
//	surfer-gen -kind rmat -scale 16 -edgefactor 12 -out rmat.srfg
//	surfer-gen -kind smallworld -vertices 65536 -rewire 0.05 -out sw.srfg
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	surfer "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("surfer-gen: ")
	var (
		kind       = flag.String("kind", "social", "generator: social, smallworld, rmat, uniform")
		vertices   = flag.Int("vertices", 1<<16, "number of vertices (social, smallworld, uniform)")
		scale      = flag.Int("scale", 16, "log2 vertices (rmat)")
		edgeFactor = flag.Int("edgefactor", 12, "average out-degree (rmat, uniform)")
		rewire     = flag.Float64("rewire", 0.05, "cross-component rewire ratio (smallworld)")
		seed       = flag.Int64("seed", 42, "random seed")
		out        = flag.String("out", "graph.srfg", "output file")
	)
	flag.Parse()

	var g *surfer.Graph
	switch *kind {
	case "social":
		g = surfer.Social(surfer.DefaultSocial(*vertices, *seed))
	case "smallworld":
		cfg := surfer.DefaultSmallWorld(*vertices, *seed)
		cfg.RewireRatio = *rewire
		g = surfer.SmallWorld(cfg)
	case "rmat":
		g = surfer.RMAT(surfer.DefaultRMAT(*scale, *edgeFactor, *seed))
	case "uniform":
		g = uniform(*vertices, *edgeFactor, *seed)
	default:
		log.Fatalf("unknown kind %q (want social, smallworld, rmat or uniform)", *kind)
	}
	if err := g.Save(*out); err != nil {
		log.Fatalf("saving %s: %v", *out, err)
	}
	fi, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d vertices, %d edges, %d bytes\n", *out, g.NumVertices(), g.NumEdges(), fi.Size())
}

func uniform(n, edgeFactor int, seed int64) *surfer.Graph {
	b := surfer.NewBuilder(n)
	// Simple LCG so the tool stays self-contained and deterministic.
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() int {
		x = x*6364136223846793005 + 1442695040888963407
		return int((x >> 33) % uint64(n))
	}
	for i := 0; i < n*edgeFactor; i++ {
		u, v := next(), next()
		if u != v {
			b.AddEdge(surfer.VertexID(u), surfer.VertexID(v))
		}
	}
	return b.Build()
}
