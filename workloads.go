package surfer

// Prebuilt workloads: the paper's six benchmark applications (Appendix D)
// plus connected components, exposed through the public API so downstream
// users can run them on their own graphs without re-implementing the
// user-defined functions.

import (
	"fmt"

	"repro/internal/apps"
)

// Workload names accepted by RunWorkload.
const (
	WorkloadVDD  = "VDD"  // vertex degree distribution
	WorkloadRS   = "RS"   // recommender system simulation
	WorkloadNR   = "NR"   // network ranking (PageRank)
	WorkloadRLG  = "RLG"  // reverse link graph
	WorkloadTC   = "TC"   // triangle counting on a 10% sample
	WorkloadTFL  = "TFL"  // two-hop friend lists on a 10% sample
	WorkloadCC   = "CC"   // weakly connected components (extension)
	WorkloadSSSP = "SSSP" // single-source shortest hop distances (extension)
)

// WorkloadNames lists the available prebuilt workloads.
func WorkloadNames() []string {
	return []string{WorkloadVDD, WorkloadRS, WorkloadNR, WorkloadRLG, WorkloadTC, WorkloadTFL, WorkloadCC, WorkloadSSSP}
}

func workloadByName(name string, iterations int) (apps.App, error) {
	if iterations <= 0 {
		iterations = 3
	}
	switch name {
	case WorkloadVDD:
		return apps.NewVDD(), nil
	case WorkloadRS:
		cfg := apps.DefaultRSConfig()
		cfg.Iterations = iterations
		return apps.NewRS(cfg), nil
	case WorkloadNR:
		return apps.NewNR(iterations), nil
	case WorkloadRLG:
		return apps.NewRLG(), nil
	case WorkloadTC:
		return apps.NewTC(apps.DefaultSelectRatio), nil
	case WorkloadTFL:
		return apps.NewTFL(apps.DefaultSelectRatio), nil
	case WorkloadCC:
		return apps.NewCC(iterations * 10), nil
	case WorkloadSSSP:
		return apps.NewSSSP(0, iterations*10), nil
	default:
		return nil, fmt.Errorf("surfer: unknown workload %q (want one of %v)", name, WorkloadNames())
	}
}

// RunWorkload executes a prebuilt workload under the propagation primitive
// and returns its result:
//
//	VDD -> map[int]int64 (degree histogram)
//	RS  -> []uint8 (adoption flags)
//	NR  -> []float64 (PageRank vector)
//	RLG -> [][]VertexID (reversed adjacency lists)
//	TC  -> int64 (triangle count)
//	TFL  -> [][]VertexID (two-hop lists)
//	CC   -> []uint32 (component labels)
//	SSSP -> []int32 (hop distances from vertex 0; apps.Unreachable if none)
func RunWorkload(sys *System, r *Runner, name string, iterations int, opt PropagationOptions) (any, Metrics, error) {
	app, err := workloadByName(name, iterations)
	if err != nil {
		return nil, Metrics{}, err
	}
	return app.RunPropagation(r, sys.PG, sys.Placement, opt)
}

// RunWorkloadMapReduce executes a prebuilt workload under the MapReduce
// primitive; result types match RunWorkload.
func RunWorkloadMapReduce(sys *System, r *Runner, name string, iterations int) (any, Metrics, error) {
	app, err := workloadByName(name, iterations)
	if err != nil {
		return nil, Metrics{}, err
	}
	return app.RunMapReduce(r, sys.PG, sys.Placement)
}

// PageRank runs the NR workload and returns the rank vector.
func PageRank(sys *System, r *Runner, iterations int, opt PropagationOptions) ([]float64, Metrics, error) {
	res, m, err := RunWorkload(sys, r, WorkloadNR, iterations, opt)
	if err != nil {
		return nil, m, err
	}
	return res.([]float64), m, nil
}

// ConnectedComponents runs the CC workload and returns per-vertex component
// labels (the minimum vertex ID of each weak component).
func ConnectedComponents(sys *System, r *Runner, opt PropagationOptions) ([]uint32, Metrics, error) {
	res, m, err := RunWorkload(sys, r, WorkloadCC, 0, opt)
	if err != nil {
		return nil, m, err
	}
	return res.([]uint32), m, nil
}

// DegreeDistribution runs the VDD workload and returns the out-degree
// histogram.
func DegreeDistribution(sys *System, r *Runner, opt PropagationOptions) (map[int]int64, Metrics, error) {
	res, m, err := RunWorkload(sys, r, WorkloadVDD, 1, opt)
	if err != nil {
		return nil, m, err
	}
	return res.(map[int]int64), m, nil
}
