// Package surfer is a Go reproduction of Surfer, the large-graph processing
// engine for the cloud described in "On the Efficiency and Programmability
// of Large Graph Processing in the Cloud" (Chen, Weng, He, Yang, Choi, Li;
// demo version in SIGMOD 2010 as "Large graph processing in the cloud").
//
// Surfer stores a graph as partitions produced by a bandwidth-aware
// multi-level partitioning algorithm, places them on the machines of an
// uneven cloud network so cross-partition traffic follows high-bandwidth
// links, and executes two programming primitives on top:
//
//   - propagation — the paper's contribution: per-edge transfer and
//     per-vertex combine functions with automatic locality optimizations
//     (local propagation, local combination, cascaded multi-iteration
//     execution);
//   - MapReduce — the partition-aware map / hash-shuffled reduce baseline.
//
// The cluster is simulated: machines, pods, NICs, disks and failures follow
// the paper's topologies (T1, T2(#pod,#level), T3) with a virtual clock, so
// every experiment runs deterministically on one host while byte counters
// remain exact. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for the paper-vs-measured results.
//
// # Quick start
//
//	g := surfer.Social(surfer.DefaultSocial(1<<16, 42))
//	topo := surfer.NewT2(surfer.T2Config{Machines: 32, Pods: 2, Levels: 1})
//	sys, err := surfer.Build(surfer.Config{
//		Graph: g, Topology: topo, Levels: 6, Seed: 42,
//	})
//	// define a propagation program and run it:
//	st, metrics, err := surfer.RunPropagation(sys, sys.NewRunner(), prog, 3,
//		surfer.PropagationOptions{LocalPropagation: true, LocalCombination: true})
package surfer

import (
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/scheduler"
	"repro/internal/storage"
	"repro/internal/trace"
)

// ---------------------------------------------------------------- graphs

// Graph is an immutable directed graph in adjacency-list (CSR) form.
type Graph = graph.Graph

// VertexID identifies a vertex; IDs are dense in [0, NumVertices).
type VertexID = graph.VertexID

// Builder accumulates edges and produces a Graph.
type Builder = graph.Builder

// NewBuilder creates a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a deduplicated graph from an edge list.
func FromEdges(n int, edges [][2]VertexID) *Graph { return graph.FromEdges(n, edges) }

// LoadGraph reads a graph from a file in the Surfer binary format.
func LoadGraph(path string) (*Graph, error) { return graph.Load(path) }

// LoadEdgeList reads a graph from a SNAP-style "src dst" text file.
func LoadEdgeList(path string) (*Graph, error) { return graph.LoadEdgeList(path) }

// Generator configurations and constructors.
type (
	// RMATConfig parameterizes the power-law R-MAT generator.
	RMATConfig = graph.RMATConfig
	// SmallWorldConfig parameterizes the paper's stitched small-world
	// generator (§F.1).
	SmallWorldConfig = graph.SmallWorldConfig
	// SocialConfig parameterizes the hybrid community+hub generator used
	// as the MSN-snapshot stand-in.
	SocialConfig = graph.SocialConfig
)

// DefaultRMAT returns classic skewed R-MAT parameters.
func DefaultRMAT(scale, edgeFactor int, seed int64) RMATConfig {
	return graph.DefaultRMAT(scale, edgeFactor, seed)
}

// RMAT generates a power-law directed graph.
func RMAT(cfg RMATConfig) *Graph { return graph.RMAT(cfg) }

// DefaultSmallWorld returns the paper-flavored stitched small-world config.
func DefaultSmallWorld(n int, seed int64) SmallWorldConfig {
	return graph.DefaultSmallWorld(n, seed)
}

// SmallWorld generates the stitched small-world graph of §F.1.
func SmallWorld(cfg SmallWorldConfig) *Graph { return graph.SmallWorld(cfg) }

// DefaultSocial returns the hybrid social-graph configuration.
func DefaultSocial(n int, seed int64) SocialConfig { return graph.DefaultSocial(n, seed) }

// Social generates the hybrid social graph (communities + hubs).
func Social(cfg SocialConfig) *Graph { return graph.Social(cfg) }

// --------------------------------------------------------------- cluster

// Topology models the simulated cloud network (§2, §6.1).
type Topology = cluster.Topology

// MachineID identifies a machine in a topology.
type MachineID = cluster.MachineID

// T2Config parameterizes the tree topology T2(#pod, #level).
type T2Config = cluster.T2Config

// NewT1 builds the flat, even-bandwidth cluster T1.
func NewT1(machines int) *Topology { return cluster.NewT1(machines) }

// NewT2 builds a switch-tree topology T2.
func NewT2(cfg T2Config) *Topology { return cluster.NewT2(cfg) }

// NewT3 builds the heterogeneous cluster T3 (half the NICs at half rate).
func NewT3(machines int, seed int64) *Topology { return cluster.NewT3(machines, seed) }

// ---------------------------------------------------------------- system

// Config describes a Surfer deployment (graph, topology, partitioning).
type Config = core.Config

// System is an assembled deployment: partitioned, placed and replicated.
type System = core.System

// PartitionStrategy selects the partitioning and placement algorithm.
type PartitionStrategy = core.PartitionStrategy

// Partitioning strategies.
const (
	// StrategyBandwidthAware is the paper's Algorithm 4 (default).
	StrategyBandwidthAware = core.StrategyBandwidthAware
	// StrategyParMetis uses the same bisection kernel with
	// bandwidth-oblivious placement.
	StrategyParMetis = core.StrategyParMetis
	// StrategyRandom assigns vertices to partitions at random.
	StrategyRandom = core.StrategyRandom
)

// Build partitions and places the configured graph.
func Build(cfg Config) (*System, error) { return core.Build(cfg) }

// Runner executes jobs on the simulated cluster in virtual time. The
// compute bodies of concurrently in-flight tasks (Transfer fan-out, Combine
// folds, Map/Reduce) execute on a real worker pool sized by Config.Workers
// (0 = GOMAXPROCS, 1 = serial); results and Metrics are bit-identical for
// every worker count — see DESIGN.md, "Parallel execution & the
// determinism contract".
type Runner = engine.Runner

// Metrics aggregates response time, total machine time, network I/O and
// disk I/O of a run.
type Metrics = engine.Metrics

// Failure schedules a machine death for fault-tolerance experiments.
type Failure = engine.Failure

// ----------------------------------------------------------- fault model

// FaultSchedule injects transient faults into a run: degraded links,
// transfer-drop windows, and machine compute slowdowns. Set one on
// Config.Faults. Nil disables injection at zero cost; values are
// bit-identical with and without workers because faults are pure functions
// of (link, time) evaluated from the serial event loop.
type FaultSchedule = fault.Schedule

// LinkFault degrades (Factor > 1) or blackholes (Drop) one directed link
// over a [From, Until) virtual-time window.
type LinkFault = fault.LinkFault

// MachineSlowdown stretches one machine's compute durations over a window,
// modeling a straggler.
type MachineSlowdown = fault.Slowdown

// RetryPolicy governs dropped-transfer detection (timeout) and the
// exponential backoff between redelivery attempts. The zero value selects
// the defaults: 1s timeout, 0.25s initial backoff doubling to 8s,
// unlimited attempts.
type RetryPolicy = fault.RetryPolicy

// SpeculationPolicy enables backup tasks for stragglers: when a running
// task's projected duration exceeds Factor times the median of committed
// tasks, a copy launches on a replica holder and the first completion wins.
type SpeculationPolicy = fault.SpeculationPolicy

// FaultFile is the on-disk JSON fault-schedule format consumed by the CLIs
// (kills, degraded links, drop windows, slowdowns in one document).
type FaultFile = fault.File

// LoadFaultFile reads a fault-schedule file.
func LoadFaultFile(path string) (*FaultFile, error) { return fault.Load(path) }

// CheckpointConfig configures iteration checkpointing for RunCheckpointed.
type CheckpointConfig = propagation.CheckpointConfig

// --------------------------------------------------------------- tracing

// TraceRecorder collects the structured event stream of traced runs. A nil
// recorder is valid and disables tracing at zero cost; set one on
// Config.Trace (or SchedulerConfig.Trace / bench.Scale.Trace) to record.
// The stream is identical for every Workers value — see docs/METRICS.md.
type TraceRecorder = trace.Recorder

// TraceEvent is one structured simulation event: a task, transfer, stage
// barrier, failure or retry, stamped with virtual times.
type TraceEvent = trace.Event

// TraceEventKind discriminates TraceEvent records.
type TraceEventKind = trace.EventKind

// TraceBreakdown is the hierarchical job → stage → machine metrics
// breakdown computed from an event stream.
type TraceBreakdown = trace.Breakdown

// NewTraceRecorder creates an enabled trace recorder.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// WriteChromeTrace exports events in Chrome trace_event JSON format
// (chrome://tracing, Perfetto): machines as processes, task/egress/ingress
// lanes as threads, the virtual clock as the time axis.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error { return trace.WriteChrome(w, events) }

// SummarizeTrace folds an event stream into the per-job, per-stage,
// per-machine breakdown (compute seconds, NIC busy time, bytes by
// destination partition, incast stalls).
func SummarizeTrace(events []TraceEvent) *TraceBreakdown { return trace.Summarize(events) }

// ----------------------------------------------------------- propagation

// Program is a propagation application: transfer and combine user-defined
// functions (§3.2).
type Program[V any] = propagation.Program[V]

// Emit delivers a value to a destination vertex during transfer.
type Emit[V any] = propagation.Emit[V]

// State carries per-vertex values between propagation iterations.
type State[V any] = propagation.State[V]

// PropagationOptions selects the automatic optimizations of §5.
type PropagationOptions = propagation.Options

// NonAssociative is a mixin for programs whose combine cannot be applied
// partially (disables local combination).
type NonAssociative[V any] = propagation.NonAssociative[V]

// CascadeInfo reports the V_k structure used by cascaded propagation.
type CascadeInfo = propagation.CascadeInfo

// RunPropagation executes a propagation program for iters iterations on a
// fresh state.
func RunPropagation[V any](sys *System, r *Runner, prog Program[V], iters int, opt PropagationOptions) (*State[V], Metrics, error) {
	return core.RunPropagation(sys, r, prog, iters, opt)
}

// RunCascaded is RunPropagation with the cascaded multi-iteration
// optimization (§5.2).
func RunCascaded[V any](sys *System, r *Runner, prog Program[V], iters int, opt PropagationOptions) (*State[V], Metrics, error) {
	return core.RunCascaded(sys, r, prog, iters, opt)
}

// RunCheckpointed is RunPropagation with iteration checkpointing: the state
// persists to storage replicas every ckpt.Interval iterations (charged to
// the virtual clock and NICs as ordinary jobs), and a machine death replays
// at most Interval iterations instead of the whole run. Replicas default to
// the system's own layout. Recovered values are bit-identical to a
// failure-free run.
func RunCheckpointed[V any](sys *System, r *Runner, prog Program[V], iters int, opt PropagationOptions, ckpt CheckpointConfig) (*State[V], Metrics, error) {
	return core.RunCheckpointed(sys, r, prog, iters, opt, ckpt)
}

// RunPropagationTree is RunPropagation with tree aggregation (an extension
// of local combination): cross-pod values merge inside the sending pod
// before crossing the oversubscribed top-level switch. Requires an
// associative program; pays off when spread placement or heavy workloads
// push a lot of duplicate-destination traffic across pods.
func RunPropagationTree[V any](sys *System, r *Runner, prog Program[V], iters int, opt PropagationOptions) (*State[V], Metrics, error) {
	st := propagation.NewState[V](sys.PG, prog)
	return propagation.RunIterationsTree(r, sys.PG, sys.Placement, prog, st, opt, iters)
}

// AnalyzeCascade computes the cascade depths (V_k membership) of a built
// system's partitions.
func AnalyzeCascade(sys *System) *CascadeInfo { return propagation.AnalyzeCascade(sys.PG) }

// ------------------------------------------------------------- mapreduce

// MRProgram is a MapReduce application on the partitioned graph (§3.1).
type MRProgram[K MRKey, V any, R any] = mapreduce.Program[K, V, R]

// MRKey constrains MapReduce keys to integer-like types.
type MRKey = mapreduce.Key

// MROptions configures a MapReduce execution.
type MROptions = mapreduce.Options

// PartInfo is the per-partition locality metadata visible to Map functions.
type PartInfo = storage.PartInfo

// RunMapReduce executes a MapReduce program once.
func RunMapReduce[K MRKey, V any, R any](sys *System, r *Runner, prog MRProgram[K, V, R], opt MROptions) (map[K]R, Metrics, error) {
	return core.RunMapReduce(sys, r, prog, opt)
}

// ------------------------------------------------------------- scheduler

// Scheduler is the job scheduler of Figure 1: cluster membership, job
// manager election, and FIFO or fair ordering of submitted jobs.
type Scheduler = scheduler.Scheduler

// SchedulerConfig configures a Scheduler.
type SchedulerConfig = scheduler.Config

// JobRequest is a job submission; JobRecord the account of its execution.
type (
	JobRequest = scheduler.Request
	JobRecord  = scheduler.Record
)

// Scheduling policies.
const (
	// ScheduleFIFO runs jobs in submission order.
	ScheduleFIFO = scheduler.FIFO
	// ScheduleFair runs the least-served user's job first.
	ScheduleFair = scheduler.Fair
)

// NewScheduler creates a job scheduler over a system's cluster. The
// scheduler's runner inherits the system's Workers setting, so compute
// parallelism follows the deployment configuration, and its trace recorder
// (Config.Trace), so scheduled jobs appear in the same timeline.
func NewScheduler(sys *System, policy scheduler.Policy) *Scheduler {
	return scheduler.New(scheduler.Config{
		Topo:        sys.Topology,
		Replicas:    sys.Replicas,
		Failures:    sys.Failures(),
		Policy:      policy,
		Workers:     sys.Workers(),
		Trace:       sys.Trace(),
		Faults:      sys.Faults(),
		Retry:       sys.Retry(),
		Speculation: sys.Speculation(),
	})
}

// ----------------------------------------------------------- diagnostics

// PartitionCostModel is the elapsed-time model for distributed partitioning
// (Table 1).
type PartitionCostModel = partition.CostModel

// DefaultPartitionCostModel returns the calibrated Table 1 constants.
func DefaultPartitionCostModel() PartitionCostModel { return partition.DefaultCostModel() }
