// Recommender system (the paper's RS workload): simulate how a product
// recommendation spreads through a social network round by round. Each
// round, every product user recommends to all friends; a recipient adopts
// with a fixed (derandomized) probability. The example tracks the adoption
// curve and the traffic each round costs.
package main

import (
	"fmt"
	"log"

	surfer "repro"
)

// adoption values: 0 = not a user, 1 = uses the product.
type recommender struct {
	seedPermille   int
	acceptPermille int
}

func hash(v surfer.VertexID, salt uint64) uint64 {
	x := uint64(v)*0x9E3779B97F4A7C15 + salt*0xBF58476D1CE4E5B9
	x ^= x >> 31
	x *= 0x94D049BB133111EB
	return x ^ (x >> 27)
}

func (r *recommender) seeded(v surfer.VertexID) bool {
	return int(hash(v, 1)%1000) < r.seedPermille
}

func (r *recommender) accepts(v surfer.VertexID) bool {
	return int(hash(v, 2)%1000) < r.acceptPermille
}

func (r *recommender) Init(v surfer.VertexID) uint8 {
	if r.seeded(v) {
		return 1
	}
	return 0
}

func (r *recommender) Transfer(_ surfer.VertexID, uses uint8, dst surfer.VertexID, emit surfer.Emit[uint8]) {
	if uses == 1 {
		emit(dst, 1)
	}
}

func (r *recommender) Combine(v surfer.VertexID, prev uint8, values []uint8) uint8 {
	if prev == 1 {
		return 1
	}
	if len(values) > 0 && r.accepts(v) {
		return 1
	}
	return 0
}

func (r *recommender) Bytes(uint8) int64 { return 1 }
func (r *recommender) Associative() bool { return true }
func (r *recommender) Merge(surfer.VertexID, []uint8) uint8 {
	return 1 // one recommendation is as good as many
}

func main() {
	g := surfer.Social(surfer.DefaultSocial(30_000, 11))
	topo := surfer.NewT2(surfer.T2Config{Machines: 16, Pods: 2, Levels: 1})
	sys, err := surfer.Build(surfer.Config{Graph: g, Topology: topo, Levels: 5, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	prog := &recommender{seedPermille: 10, acceptPermille: 300}
	opt := surfer.PropagationOptions{LocalPropagation: true, LocalCombination: true}

	fmt.Printf("social network: %d people, %d friendships on %s\n",
		g.NumVertices(), g.NumEdges(), topo)
	count := func(vals []uint8) int {
		c := 0
		for _, v := range vals {
			if v == 1 {
				c++
			}
		}
		return c
	}

	// Run round by round so we can observe the adoption curve; each call
	// executes one more propagation iteration from scratch (deterministic,
	// so the prefix repeats exactly).
	var prevAdopters int
	for round := 1; round <= 6; round++ {
		st, m, err := surfer.RunPropagation(sys, sys.NewRunner(), prog, round, opt)
		if err != nil {
			log.Fatal(err)
		}
		adopters := count(st.Values)
		fmt.Printf("round %d: %6d adopters (+%5d), round response %.4f s, network %.2f MB\n",
			round, adopters, adopters-prevAdopters, m.ResponseSeconds,
			float64(m.NetworkBytes)/1e6)
		prevAdopters = adopters
	}

	// Effectiveness summary (what the paper's marketer would read).
	st, _, err := surfer.RunPropagation(sys, sys.NewRunner(), prog, 6, opt)
	if err != nil {
		log.Fatal(err)
	}
	seeds := 0
	for v := 0; v < g.NumVertices(); v++ {
		if prog.seeded(surfer.VertexID(v)) {
			seeds++
		}
	}
	final := count(st.Values)
	fmt.Printf("\ncampaign: %d seeds -> %d users (%.1fx uplift, %.1f%% of the network)\n",
		seeds, final, float64(final)/float64(seeds),
		100*float64(final)/float64(g.NumVertices()))
}
