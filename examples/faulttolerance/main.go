// Fault tolerance and multi-job scheduling: run PageRank jobs through the
// job scheduler while a slave machine dies mid-run. The engine detects the
// failure via heartbeat, re-executes the lost tasks on replica machines
// (re-transferring Combine inputs), and the results stay bit-identical to a
// failure-free run — the Figure 10 experiment, driven through the public
// API.
package main

import (
	"fmt"
	"log"
	"math"

	surfer "repro"
)

const damping = 0.85

type pagerank struct {
	g *surfer.Graph
	n float64
}

func (p *pagerank) Init(surfer.VertexID) float64 { return 1 / p.n }
func (p *pagerank) Transfer(src surfer.VertexID, rank float64, dst surfer.VertexID, emit surfer.Emit[float64]) {
	emit(dst, rank*damping/float64(p.g.OutDegree(src)))
}
func (p *pagerank) Combine(_ surfer.VertexID, _ float64, values []float64) float64 {
	sum := 0.0
	for _, r := range values {
		sum += r
	}
	return sum + (1-damping)/p.n
}
func (p *pagerank) Bytes(float64) int64 { return 8 }
func (p *pagerank) Associative() bool   { return true }
func (p *pagerank) Merge(_ surfer.VertexID, values []float64) float64 {
	sum := 0.0
	for _, r := range values {
		sum += r
	}
	return sum
}

func main() {
	g := surfer.Social(surfer.DefaultSocial(20_000, 3))
	topo := surfer.NewT1(8)
	opt := surfer.PropagationOptions{LocalPropagation: true, LocalCombination: true}
	prog := &pagerank{g: g, n: float64(g.NumVertices())}

	// Failure-free baseline.
	clean, err := surfer.Build(surfer.Config{Graph: g, Topology: topo, Levels: 4, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	baseSt, baseM, err := surfer.RunPropagation(clean, clean.NewRunner(), prog, 3, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %.4f s, %d task executions\n", baseM.ResponseSeconds, baseM.TasksRun)

	// Same system with machine 2 scheduled to die mid-run.
	killAt := baseM.ResponseSeconds * 0.3
	faulty, err := surfer.Build(surfer.Config{
		Graph: g, Topology: topo, Levels: 4, Seed: 3,
		Failures:          []surfer.Failure{{Machine: 2, At: killAt}},
		HeartbeatInterval: baseM.ResponseSeconds / 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	r := faulty.NewRunner()
	st, m, err := surfer.RunPropagation(faulty, r, prog, 3, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with failure: %.4f s (%.1f%% overhead), %d recoveries\n",
		m.ResponseSeconds, 100*(m.ResponseSeconds-baseM.ResponseSeconds)/baseM.ResponseSeconds,
		m.Recoveries)

	// Correctness is unaffected by the failure.
	var maxDiff float64
	for v := range st.Values {
		if d := math.Abs(st.Values[v] - baseSt.Values[v]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max rank difference vs baseline: %.2e (must be 0)\n", maxDiff)

	// The job manager's view: per-machine utilization; the dead machine
	// stops accumulating.
	fmt.Println("machine utilization after the run:")
	for machine, u := range r.MachineUtilization() {
		marker := ""
		if machine == 2 {
			marker = "   <- killed"
		}
		fmt.Printf("  machine %d: %5.1f%%%s\n", machine, 100*u, marker)
	}

	// Multi-job view: the job scheduler runs competing users' jobs with
	// fair sharing and rotates the job manager.
	sched := surfer.NewScheduler(clean, surfer.ScheduleFair)
	for i := 0; i < 2; i++ {
		sched.Submit(surfer.JobRequest{Name: fmt.Sprintf("alice-%d", i), User: "alice",
			Run: func(r *surfer.Runner) (surfer.Metrics, error) {
				_, m, err := surfer.RunPropagation(clean, r, prog, 1, opt)
				return m, err
			}})
	}
	sched.Submit(surfer.JobRequest{Name: "bob-0", User: "bob",
		Run: func(r *surfer.Runner) (surfer.Metrics, error) {
			_, m, err := surfer.RunPropagation(clean, r, prog, 1, opt)
			return m, err
		}})
	sched.RunAll()
	fmt.Println("\nscheduler records (fair policy):")
	for _, rec := range sched.Records() {
		fmt.Printf("  %-8s user=%-6s manager=m%d wait=%.4fs run=%.4fs\n",
			rec.Name, rec.User, rec.Manager, rec.WaitSeconds(), rec.FinishedAt-rec.StartedAt)
	}
}
