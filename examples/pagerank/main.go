// PageRank (the paper's NR workload) over a simulated 32-machine cloud:
// runs multi-iteration network ranking with cascaded propagation (§5.2),
// compares it against the naive iteration-by-iteration execution, and
// reports convergence and the top-ranked vertices.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	surfer "repro"
)

const damping = 0.85

// pagerank implements Algorithm 1 of the paper: transfer distributes a
// vertex's rank over its out-edges; combine sums the received partial ranks
// and adds the random-jump term.
type pagerank struct {
	g *surfer.Graph
	n float64
}

func (p *pagerank) Init(surfer.VertexID) float64 { return 1 / p.n }

func (p *pagerank) Transfer(src surfer.VertexID, rank float64, dst surfer.VertexID, emit surfer.Emit[float64]) {
	emit(dst, rank*damping/float64(p.g.OutDegree(src)))
}

func (p *pagerank) Combine(_ surfer.VertexID, _ float64, values []float64) float64 {
	sum := 0.0
	for _, r := range values {
		sum += r
	}
	return sum + (1-damping)/p.n
}

func (p *pagerank) Bytes(float64) int64 { return 8 }
func (p *pagerank) Associative() bool   { return true }
func (p *pagerank) Merge(_ surfer.VertexID, values []float64) float64 {
	sum := 0.0
	for _, r := range values {
		sum += r
	}
	return sum
}

func main() {
	// A stitched small-world graph with a low rewire ratio: strong
	// community structure keeps many vertices far from any partition
	// boundary, which is what cascaded propagation exploits.
	cfg := surfer.DefaultSmallWorld(50_000, 7)
	cfg.RewireRatio = 0.01
	cfg.Beta = 0.05
	g := surfer.SmallWorld(cfg)
	topo := surfer.NewT2(surfer.T2Config{Machines: 32, Pods: 4, Levels: 2})
	sys, err := surfer.Build(surfer.Config{Graph: g, Topology: topo, Levels: 6, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges on %s\n", g.NumVertices(), g.NumEdges(), topo)

	prog := &pagerank{g: g, n: float64(g.NumVertices())}
	opt := surfer.PropagationOptions{LocalPropagation: true, LocalCombination: true}
	const iters = 10

	// Cascaded multi-iteration execution: vertices whose k-hop
	// in-neighborhood stays inside their partition skip intermediate
	// state I/O for k iterations.
	ci := surfer.AnalyzeCascade(sys)
	fmt.Printf("cascade: V_k (k>=2) ratio %.1f%%, d_min %d\n", 100*ci.VkRatio(2), ci.MinDiameter)

	stCasc, mCasc, err := surfer.RunCascaded(sys, sys.NewRunner(), prog, iters, opt)
	if err != nil {
		log.Fatal(err)
	}
	stPlain, mPlain, err := surfer.RunPropagation(sys, sys.NewRunner(), prog, iters, opt)
	if err != nil {
		log.Fatal(err)
	}

	// Cascading only changes I/O, never results.
	var maxDiff float64
	for v := range stPlain.Values {
		if d := math.Abs(stPlain.Values[v] - stCasc.Values[v]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max rank difference plain vs cascaded: %.2e (must be 0)\n", maxDiff)
	fmt.Printf("plain:    response %.4f s, disk %.1f MB\n", mPlain.ResponseSeconds, float64(mPlain.DiskBytes)/1e6)
	fmt.Printf("cascaded: response %.4f s, disk %.1f MB (%.1f%% disk saved)\n",
		mCasc.ResponseSeconds, float64(mCasc.DiskBytes)/1e6,
		100*float64(mPlain.DiskBytes-mCasc.DiskBytes)/float64(mPlain.DiskBytes))

	// Convergence: run a few more iterations and watch the L1 delta.
	st := stPlain
	prev := st.Values
	for i := 0; i < 3; i++ {
		next, _, err := surfer.RunPropagation(sys, sys.NewRunner(), prog, iters+i+1, opt)
		if err != nil {
			log.Fatal(err)
		}
		var l1 float64
		for v := range prev {
			l1 += math.Abs(next.Values[v] - prev[v])
		}
		fmt.Printf("iteration %d: L1 delta %.3e\n", iters+i+1, l1)
		prev = next.Values
	}

	// Top 5 ranked vertices.
	type vr struct {
		v surfer.VertexID
		r float64
	}
	ranked := make([]vr, len(st.Values))
	for v, r := range st.Values {
		ranked[v] = vr{surfer.VertexID(v), r}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].r > ranked[j].r })
	fmt.Println("top-5 ranked vertices:")
	for _, x := range ranked[:5] {
		fmt.Printf("  vertex %6d rank %.6f (out-degree %d)\n", x.v, x.r, g.OutDegree(x.v))
	}
}
