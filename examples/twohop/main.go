// Two-hop friend lists (the paper's TFL workload), with the same job
// implemented under both primitives — propagation and MapReduce — to show
// the efficiency and programmability gap of §6.4 from the public API.
// TFL ships whole adjacency lists along edges, so it produces the heaviest
// intermediate data of the paper's six workloads.
package main

import (
	"fmt"
	"log"
	"slices"

	surfer "repro"
)

// selected marks the 10% vertex sample TFL pushes lists from (Appendix D).
func selected(v surfer.VertexID) bool {
	return (uint64(v)*2654435761)%10 == 0
}

// --- propagation implementation: 4 small functions ---

type twoHop struct {
	g *surfer.Graph
}

func (p *twoHop) Init(surfer.VertexID) []surfer.VertexID { return nil }

func (p *twoHop) Transfer(src surfer.VertexID, _ []surfer.VertexID, dst surfer.VertexID, emit surfer.Emit[[]surfer.VertexID]) {
	if selected(src) {
		emit(dst, p.g.Neighbors(src))
	}
}

func (p *twoHop) Combine(_ surfer.VertexID, _ []surfer.VertexID, values [][]surfer.VertexID) []surfer.VertexID {
	return distinct(values)
}

func (p *twoHop) Bytes(l []surfer.VertexID) int64 {
	if len(l) == 0 {
		return 0
	}
	return 4 + 4*int64(len(l))
}

func (p *twoHop) Associative() bool { return true }

func (p *twoHop) Merge(_ surfer.VertexID, values [][]surfer.VertexID) []surfer.VertexID {
	return distinct(values)
}

func distinct(lists [][]surfer.VertexID) []surfer.VertexID {
	var out []surfer.VertexID
	for _, l := range lists {
		out = append(out, l...)
	}
	if len(out) == 0 {
		return nil
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// --- MapReduce implementation of the same job ---

type twoHopMR struct{}

func (twoHopMR) Map(pi *surfer.PartInfo, g *surfer.Graph, emit func(surfer.VertexID, []surfer.VertexID)) {
	for _, u := range pi.Vertices {
		if !selected(u) {
			continue
		}
		list := g.Neighbors(u)
		for _, v := range list {
			emit(v, list)
		}
	}
}

func (twoHopMR) Reduce(_ surfer.VertexID, values [][]surfer.VertexID) []surfer.VertexID {
	return distinct(values)
}

func (twoHopMR) PairBytes(_ surfer.VertexID, l []surfer.VertexID) int64 { return 8 + 4*int64(len(l)) }
func (twoHopMR) ResultBytes(l []surfer.VertexID) int64                  { return 8 + 4*int64(len(l)) }

func main() {
	g := surfer.Social(surfer.DefaultSocial(30_000, 5))
	topo := surfer.NewT1(16)
	sys, err := surfer.Build(surfer.Config{Graph: g, Topology: topo, Levels: 5, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges on %s\n", g.NumVertices(), g.NumEdges(), topo)

	// Propagation with all locality optimizations.
	stP, mp, err := surfer.RunPropagation[[]surfer.VertexID](sys, sys.NewRunner(), &twoHop{g: g}, 1,
		surfer.PropagationOptions{LocalPropagation: true, LocalCombination: true})
	if err != nil {
		log.Fatal(err)
	}
	// MapReduce with a hash shuffle.
	resMR, mm, err := surfer.RunMapReduce[surfer.VertexID, []surfer.VertexID, []surfer.VertexID](
		sys, sys.NewRunner(), twoHopMR{}, surfer.MROptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Both produce identical two-hop lists.
	mismatches := 0
	for v := range stP.Values {
		mrList := resMR[surfer.VertexID(v)]
		if !slices.Equal(stP.Values[v], mrList) {
			mismatches++
		}
	}
	fmt.Printf("result mismatch count: %d (must be 0)\n", mismatches)

	var withLists, totalLen int
	for _, l := range stP.Values {
		if len(l) > 0 {
			withLists++
			totalLen += len(l)
		}
	}
	fmt.Printf("vertices with two-hop lists: %d (avg length %.1f)\n",
		withLists, float64(totalLen)/float64(max(withLists, 1)))

	fmt.Printf("\npropagation: response %.4f s, network %.2f MB, disk %.2f MB\n",
		mp.ResponseSeconds, float64(mp.NetworkBytes)/1e6, float64(mp.DiskBytes)/1e6)
	fmt.Printf("mapreduce:   response %.4f s, network %.2f MB, disk %.2f MB\n",
		mm.ResponseSeconds, float64(mm.NetworkBytes)/1e6, float64(mm.DiskBytes)/1e6)
	fmt.Printf("propagation speedup: %.1fx, network reduction: %.1f%%\n",
		mm.ResponseSeconds/mp.ResponseSeconds,
		100*float64(mm.NetworkBytes-mp.NetworkBytes)/float64(mm.NetworkBytes))
}
