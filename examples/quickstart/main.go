// Quickstart: build a small social graph, deploy it on a simulated
// two-pod cloud cluster with bandwidth-aware partitioning, and run one
// propagation program — counting each vertex's in-degree — end to end.
package main

import (
	"fmt"
	"log"

	surfer "repro"
)

// inDegree is the simplest possible propagation program: every vertex sends
// the value 1 along each of its out-edges, and each vertex sums what it
// received. After one iteration, every vertex holds its in-degree.
type inDegree struct{}

func (inDegree) Init(surfer.VertexID) int64 { return 0 }

func (inDegree) Transfer(_ surfer.VertexID, _ int64, dst surfer.VertexID, emit surfer.Emit[int64]) {
	emit(dst, 1)
}

func (inDegree) Combine(_ surfer.VertexID, _ int64, values []int64) int64 {
	var sum int64
	for _, v := range values {
		sum += v
	}
	return sum
}

func (inDegree) Bytes(int64) int64 { return 8 }

// Summation is associative, so Surfer may pre-combine values headed to the
// same vertex inside each partition (local combination, §5.1).
func (inDegree) Associative() bool { return true }

func (inDegree) Merge(_ surfer.VertexID, values []int64) int64 {
	var sum int64
	for _, v := range values {
		sum += v
	}
	return sum
}

func main() {
	// 1. A synthetic social graph: small-world communities plus
	//    power-law hubs, standing in for a real social network snapshot.
	g := surfer.Social(surfer.DefaultSocial(10_000, 42))
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// 2. A simulated cloud: 8 machines in two pods behind a tree switch;
	//    cross-pod bandwidth is 1/32 of the intra-pod rate.
	topo := surfer.NewT2(surfer.T2Config{Machines: 8, Pods: 2, Levels: 1})

	// 3. Partition the graph bandwidth-awarely into 2^4 = 16 partitions
	//    and place them so heavily-connected partitions share pods.
	sys, err := surfer.Build(surfer.Config{
		Graph:    g,
		Topology: topo,
		Levels:   4,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitions: %d, inner edge ratio: %.1f%%\n",
		sys.PG.Part.P, 100*sys.InnerEdgeRatio())

	// 4. Run the propagation program for one iteration with all the
	//    automatic locality optimizations enabled.
	st, m, err := surfer.RunPropagation[int64](sys, sys.NewRunner(), inDegree{}, 1,
		surfer.PropagationOptions{LocalPropagation: true, LocalCombination: true})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Inspect results and the run's cost.
	var maxV surfer.VertexID
	for v := range st.Values {
		if st.Values[v] > st.Values[maxV] {
			maxV = surfer.VertexID(v)
		}
	}
	fmt.Printf("most-followed vertex: %d with in-degree %d\n", maxV, st.Values[maxV])
	fmt.Printf("simulated response time: %.4f s\n", m.ResponseSeconds)
	fmt.Printf("network I/O: %.2f MB, disk I/O: %.2f MB\n",
		float64(m.NetworkBytes)/1e6, float64(m.DiskBytes)/1e6)
}
