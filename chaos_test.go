package surfer

import (
	"math"
	"testing"

	"repro/internal/fault"
)

// TestChaosSoak replays seeded random fault schedules — degraded links,
// transfer-drop windows, machine slowdowns and permanent kills, all at once —
// against PageRank and checks the whole fault model end to end: every run
// must finish, produce vertex values bit-identical to a failure-free run,
// and report identical metrics for every worker count. Across the soak the
// schedules must actually bite (nonzero recoveries, drops and retries), so
// the determinism claim is not vacuous.
func TestChaosSoak(t *testing.T) {
	g := Social(DefaultSocial(4096, 5))
	topo := NewT2(T2Config{Machines: 8, Pods: 2, Levels: 1})
	opt := PropagationOptions{LocalPropagation: true, LocalCombination: true}
	prog := &pagerank{g: g, n: float64(g.NumVertices())}
	const iters = 3

	build := func(workers int, failures []Failure, heartbeat float64, faults *FaultSchedule) (*State[float64], Metrics) {
		t.Helper()
		sys, err := Build(Config{
			Graph: g, Topology: topo, Levels: 4, Seed: 5,
			Failures: failures, HeartbeatInterval: heartbeat,
			Faults:      faults,
			Speculation: SpeculationPolicy{Enabled: true},
			Workers:     workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, m, err := RunPropagation(sys, sys.NewRunner(), prog, iters, opt)
		if err != nil {
			t.Fatal(err)
		}
		return st, m
	}

	baseSt, baseM := build(1, nil, 0, nil)
	horizon := baseM.ResponseSeconds
	heartbeat := horizon / 20

	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	var totalRecoveries, totalDrops, totalRetries int
	for _, seed := range seeds {
		sched, kills := fault.Generate(fault.GenConfig{
			Machines: topo.NumMachines(), Horizon: horizon,
			Degrades: 3, Drops: 3, Slowdowns: 2, Kills: 1, Seed: seed,
		})
		var failures []Failure
		for _, k := range kills {
			failures = append(failures, Failure{Machine: k.Machine, At: k.At})
		}

		refSt, refM := build(1, failures, heartbeat, sched)
		totalRecoveries += refM.Recoveries
		totalDrops += refM.TransferDrops
		totalRetries += refM.TransferRetries

		// Chaos changes the clock and the byte counters, never the values.
		for v := range baseSt.Values {
			if math.Float64bits(refSt.Values[v]) != math.Float64bits(baseSt.Values[v]) {
				t.Fatalf("seed %d: vertex %d diverges from failure-free run", seed, v)
			}
		}
		// The same schedule replays bit-identically on any worker count.
		for _, workers := range []int{4, 8} {
			st, m := build(workers, failures, heartbeat, sched)
			if m != refM {
				t.Fatalf("seed %d workers=%d: metrics %+v differ from serial %+v", seed, workers, m, refM)
			}
			for v := range refSt.Values {
				if math.Float64bits(st.Values[v]) != math.Float64bits(refSt.Values[v]) {
					t.Fatalf("seed %d workers=%d: vertex %d diverges", seed, workers, v)
				}
			}
		}
	}
	if totalRecoveries == 0 {
		t.Errorf("no machine kill triggered a recovery across %d seeds; soak is vacuous", len(seeds))
	}
	if totalDrops == 0 || totalRetries == 0 {
		t.Errorf("no transfer drops (%d) or retries (%d) across %d seeds; soak is vacuous",
			totalDrops, totalRetries, len(seeds))
	}
}
