package surfer

import (
	"math"
	"testing"
)

// pagerank is a minimal public-API propagation program used by the tests.
type pagerank struct {
	g *Graph
	n float64
}

func (p *pagerank) Init(VertexID) float64 { return 1 / p.n }
func (p *pagerank) Transfer(src VertexID, rank float64, dst VertexID, emit Emit[float64]) {
	emit(dst, rank*0.85/float64(p.g.OutDegree(src)))
}
func (p *pagerank) Combine(_ VertexID, _ float64, values []float64) float64 {
	sum := 0.0
	for _, r := range values {
		sum += r
	}
	return sum + 0.15/p.n
}
func (p *pagerank) Bytes(float64) int64 { return 8 }
func (p *pagerank) Associative() bool   { return true }
func (p *pagerank) Merge(_ VertexID, values []float64) float64 {
	sum := 0.0
	for _, r := range values {
		sum += r
	}
	return sum
}

func buildTestSystem(t *testing.T) *System {
	t.Helper()
	g := Social(DefaultSocial(2048, 7))
	topo := NewT2(T2Config{Machines: 8, Pods: 2, Levels: 1})
	sys, err := Build(Config{Graph: g, Topology: topo, Levels: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sys := buildTestSystem(t)
	prog := &pagerank{g: sys.Graph, n: float64(sys.Graph.NumVertices())}
	st, m, err := RunPropagation(sys, sys.NewRunner(), prog, 3,
		PropagationOptions{LocalPropagation: true, LocalCombination: true})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range st.Values {
		sum += r
	}
	if sum < 0.5 || sum > 1.0+1e-9 {
		t.Fatalf("rank sum = %g", sum)
	}
	if m.ResponseSeconds <= 0 || m.NetworkBytes <= 0 {
		t.Fatalf("implausible metrics %+v", m)
	}
}

func TestPublicAPICascaded(t *testing.T) {
	sys := buildTestSystem(t)
	prog := &pagerank{g: sys.Graph, n: float64(sys.Graph.NumVertices())}
	plain, _, err := RunPropagation(sys, sys.NewRunner(), prog, 4, PropagationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	casc, _, err := RunCascaded(sys, sys.NewRunner(), prog, 4, PropagationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range plain.Values {
		if math.Abs(plain.Values[v]-casc.Values[v]) > 1e-15 {
			t.Fatalf("cascaded diverged at %d", v)
		}
	}
	ci := AnalyzeCascade(sys)
	if len(ci.Depth) != sys.Graph.NumVertices() {
		t.Fatal("cascade info wrong size")
	}
}

// degreeMR counts out-degrees via the public MapReduce surface.
type degreeMR struct{}

func (degreeMR) Map(pi *PartInfo, g *Graph, emit func(int, int64)) {
	for _, v := range pi.Vertices {
		emit(g.OutDegree(v), 1)
	}
}
func (degreeMR) Reduce(_ int, values []int64) int64 {
	var s int64
	for _, v := range values {
		s += v
	}
	return s
}
func (degreeMR) PairBytes(int, int64) int64 { return 12 }
func (degreeMR) ResultBytes(int64) int64    { return 12 }

func TestPublicAPIMapReduce(t *testing.T) {
	sys := buildTestSystem(t)
	res, m, err := RunMapReduce[int, int64, int64](sys, sys.NewRunner(), degreeMR{}, MROptions{})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range res {
		total += c
	}
	if total != int64(sys.Graph.NumVertices()) {
		t.Fatalf("histogram total = %d, want %d", total, sys.Graph.NumVertices())
	}
	if m.NetworkBytes == 0 {
		t.Fatal("MapReduce shuffle produced no network traffic")
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	if g := RMAT(DefaultRMAT(8, 4, 1)); g.NumVertices() != 256 {
		t.Fatal("RMAT size")
	}
	if g := SmallWorld(DefaultSmallWorld(1000, 1)); g.NumVertices() == 0 {
		t.Fatal("SmallWorld empty")
	}
	if g := Social(DefaultSocial(1000, 1)); g.NumEdges() == 0 {
		t.Fatal("Social empty")
	}
	g := FromEdges(3, [][2]VertexID{{0, 1}, {1, 2}})
	if !g.HasEdge(0, 1) {
		t.Fatal("FromEdges")
	}
}

func TestPublicAPIStrategies(t *testing.T) {
	g := Social(DefaultSocial(1024, 3))
	topo := NewT1(4)
	for _, strat := range []PartitionStrategy{StrategyBandwidthAware, StrategyParMetis, StrategyRandom} {
		sys, err := Build(Config{Graph: g, Topology: topo, Levels: 2, Strategy: strat, Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if sys.PG.Part.P != 4 {
			t.Fatalf("%v: P = %d", strat, sys.PG.Part.P)
		}
	}
	// Table 1 helper surfaces through the public API too.
	sys, _ := Build(Config{Graph: g, Topology: topo, Levels: 2, Seed: 3})
	if sys.PartitioningTime(DefaultPartitionCostModel()) <= 0 {
		t.Fatal("no partitioning time")
	}
}

func TestPublicAPIFailureInjection(t *testing.T) {
	g := Social(DefaultSocial(1024, 9))
	topo := NewT1(4)
	sys, err := Build(Config{
		Graph: g, Topology: topo, Levels: 2, Seed: 9,
		Failures: []Failure{{Machine: 0, At: 0.0001}},
	})
	if err != nil {
		t.Fatal(err)
	}
	prog := &pagerank{g: g, n: float64(g.NumVertices())}
	st, _, err := RunPropagation(sys, sys.NewRunner(), prog, 2,
		PropagationOptions{LocalPropagation: true})
	if err != nil {
		t.Fatal(err)
	}
	// Results must be unaffected by the failure.
	ref, _, err := RunPropagation(sys, NewT1ref(sys), prog, 2, PropagationOptions{LocalPropagation: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range st.Values {
		if math.Abs(st.Values[v]-ref.Values[v]) > 1e-15 {
			t.Fatalf("failure changed results at %d", v)
		}
	}
}

// NewT1ref builds a failure-free runner over the same system for
// result-equivalence checks.
func NewT1ref(sys *System) *Runner {
	clean, err := Build(Config{Graph: sys.Graph, Topology: sys.Topology, Levels: 2, Seed: 9})
	if err != nil {
		panic(err)
	}
	return clean.NewRunner()
}
