#!/bin/sh
# CI gate: format, vet, build, and run the full test suite under the race
# detector. The parallel executor's determinism tests (quick_test.go,
# parallel_test.go, faulttolerance_test.go) run with worker pools > 1 here,
# so -race exercises the concurrent Transfer/Combine/Map/Reduce paths for
# real data races. The smoke step then exercises the observability layer
# end to end: generate a graph, run a traced NR job on the heterogeneous
# topology, validate both trace exports, attribute the run's makespan with
# surfer-analyze, and check the bench -json report against its own schema
# via the -compare gate.
set -eux

test -z "$(gofmt -l .)"
# Vet fail-fast: vet the package groups separately (commands, library,
# root) so the first failing group stops the gate right there with its
# own diagnostics, instead of interleaving every group's findings in one
# combined run.
for pkgs in ./internal/... ./cmd/... .; do
    go vet "$pkgs"
done
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT

# Determinism-contract static gate (docs/LINTS.md): wall-clock/entropy
# calls — direct or laundered through helper-package call chains (SL005) —
# map-iteration order leaking into ordered output, concurrency outside the
# engine pool, order-sensitive float folds, mutation of published CSR
# views, and undocumented trace/blame/bench vocabulary. The -json run is
# kept as a build artifact (the auditable suppression + baseline
# inventory); its exit status is the gate: zero unsuppressed error-severity
# findings, warn findings only if parked in lint-baseline.json. Runs
# before the race gate, so contract violations fail faster than the tests
# that would (sometimes) catch them dynamically.
go run ./cmd/surfer-lint -json ./... > "$smoke/surfer-lint.json"
go build ./...
# Lint-engine self-test under the race detector: the analyzer that gates
# everything else gets the same concurrency scrutiny as the engine.
go test -race ./internal/lint
# Fast fault-model gate: failover, transient faults, retry/backoff,
# speculation, checkpoint rollback and the chaos soak (short mode) under
# the race detector, before the full suite. TestNilScheduleHotPathAllocatesNothing
# pins that the fault-free hot path stays allocation-free.
go test -race -short -run 'Fault|Chaos' . ./internal/...
# Elastic-membership gate: join/drain/migration determinism, the drain
# deadline→failure degradation, the autoscale policy, drain-aware job
# service rerouting and the elastic churn soak (short mode), all under
# the race detector.
go test -race -short -run 'Elastic|Drain|Join|Migrat|Autoscale|Dormant|Retire' ./internal/...
# Scheduler gate, mirroring the fault gate: the multi-tenant job service's
# policy goldens, scheduling invariants, cross-worker determinism battery
# and committed fuzz corpus under the race detector (the planning pool
# runs concurrently at workers 4 and 8).
go test -race -run 'Policy|Golden|Starvation|Inversion|Admission|Determinism|Fuzz' ./internal/jobsvc
# Metrics gate: the windowed time-series fold and alert engine under the
# race detector — the live path runs as a Recorder observer inside runs
# whose worker pools are concurrent, so the collector gets the same
# scrutiny as the engine. The chaos golden pins live==derived byte
# identity across workers on a seeded fault+elastic schedule.
go test -race ./internal/metrics
go test -race ./...

go run ./cmd/surfer-gen -kind social -vertices 4096 -seed 42 -out "$smoke/g.srfg"
go run ./cmd/surfer-run -graph "$smoke/g.srfg" -app nr -topology t3 \
    -machines 8 -levels 2 -trace "$smoke/trace.json" -events "$smoke/run.events"
go run ./cmd/surfer-trace -in "$smoke/trace.json"
go run ./cmd/surfer-trace -in "$smoke/run.events" -breakdown
# Critical-path analysis gate: the analyzer must accept its own capture
# (nonzero exit on a malformed or acausal stream) and emit the blame table.
go run ./cmd/surfer-analyze -trace "$smoke/run.events" > "$smoke/report.txt"
grep -q "blame attribution" "$smoke/report.txt"
# Bench report schema + regression gate: a small table1 run must emit a
# valid surfer-bench/v1 report, and comparing it against itself must pass.
go run ./cmd/surfer-bench -experiment table1 -vertices 8192 -machines 8 \
    -levels 3 -json "$smoke/bench.json" > /dev/null
go run ./cmd/surfer-analyze -compare "$smoke/bench.json" "$smoke/bench.json" -threshold 5%
# And a tampered copy (parmetis_seconds inflated ~10x) must fail the gate.
sed 's/"parmetis_seconds": \([0-9]\)/"parmetis_seconds": 9\1/' \
    "$smoke/bench.json" > "$smoke/bench-bad.json"
if go run ./cmd/surfer-analyze -compare "$smoke/bench.json" "$smoke/bench-bad.json" -threshold 5%; then
    echo "compare gate failed to catch a regression" >&2
    exit 1
fi
# Elastic membership smoke: a JSON fault file with a spot-instance join
# (out-of-topology target — surfer-run must expand the cluster for it)
# and a drain must run end to end, report the migration in the summary,
# surface the migration blame category in the analyzer, and the
# autoscaler must accept its own capture and emit a replayable plan.
cat > "$smoke/elastic.json" <<'EOF'
{
  "joins":  [{"machine": 8, "at": 0.0005, "nics": 62.5e6}],
  "drains": [{"machine": 3, "at": 0.001, "deadline": 1.0}]
}
EOF
go run ./cmd/surfer-run -graph "$smoke/g.srfg" -app nr -topology t1 \
    -machines 8 -levels 3 -fail "$smoke/elastic.json" \
    -events "$smoke/elastic.events" -metrics "$smoke/live.series" > "$smoke/elastic.txt"
grep -q "elasticity:.*1 join(s), 1 drain(s)" "$smoke/elastic.txt"
# Metrics determinism smoke: series sampled live (recorder observer during
# the run above) must be byte-identical to series derived offline from the
# run's own capture — the two-path contract EXPERIMENTS.md's recipe relies
# on, checked here on a seeded fault+elastic schedule.
go run ./cmd/surfer-metrics -trace "$smoke/elastic.events" -window 0.25 -json \
    > "$smoke/derived.series"
cmp "$smoke/live.series" "$smoke/derived.series"
# "migration=" only appears in a per-stage blame row, i.e. when the
# critical path actually spent seconds on the drain's eviction.
go run ./cmd/surfer-analyze -trace "$smoke/elastic.events" | grep -q "migration="
go run ./cmd/surfer-analyze -autoscale "$smoke/elastic.events" -json > "$smoke/plan.json"
go run ./cmd/surfer-run -graph "$smoke/g.srfg" -app nr -topology t1 \
    -machines 8 -levels 3 -fail "$smoke/plan.json" > /dev/null
# Multi-tenant scheduler smoke + regression gate: generate a workload,
# replay it through the job service, attribute the stream (the scheduler's
# queued-preempted category must appear in the blame table), then
# regenerate the multitenant bench at the committed baseline's scale and
# gate its virtual-time metrics against BENCH_multitenant.json.
go run ./cmd/surfer-submit -gen 6 -tenants 3 -seed 7 -out "$smoke/jobs.json"
go run ./cmd/surfer-submit -jobs "$smoke/jobs.json" -policy fair \
    -events "$smoke/jobs.events" > "$smoke/submit.txt"
grep -q "Jain fairness" "$smoke/submit.txt"
go run ./cmd/surfer-analyze -trace "$smoke/jobs.events" | grep -q "queued-preempted"
go run ./cmd/surfer-bench -experiment multitenant -vertices 4096 -levels 4 \
    -machines 8 -json "$smoke/mt.json" > /dev/null
go run ./cmd/surfer-analyze -compare BENCH_multitenant.json "$smoke/mt.json" -threshold 5%
# CLI surface smoke: every tool the README quickstart documents must build
# and print its usage on -h. (go run exits nonzero on -h; the pipeline's
# status is grep's, which is what we assert.)
for tool in surfer-gen surfer-part surfer-run surfer-bench surfer-trace \
    surfer-lint surfer-analyze surfer-submit surfer-tune surfer-metrics; do
    go run "./cmd/$tool" -h 2>&1 | grep -q '^Usage'
done
# Auto-tuner smoke: a tiny deterministic search (virtual objective, fixed
# seed) must converge on a winner and print the trace.
go run ./cmd/surfer-tune -app nr -vertices 4096 -machines 8 -levels 3 \
    -budget 8 -seed 42 > "$smoke/tune.txt"
grep -q '^best:' "$smoke/tune.txt"
# Fast-path scale gate: regenerate the 65k row of the scale trajectory at
# the committed baseline's exact parameters and gate its virtual metrics
# against BENCH_scale.json (-compare checks only the entries present in
# the new report, so the baseline's 1M rows ride along as reference).
go run ./cmd/surfer-bench -experiment scale -sizes 65536 -vertices 65536 \
    -machines 32 -levels 6 -seed 42 -json "$smoke/scale.json" > /dev/null
go run ./cmd/surfer-analyze -compare BENCH_scale.json "$smoke/scale.json" -threshold 5%
