#!/bin/sh
# CI gate: vet, build, and run the full test suite under the race detector.
# The parallel executor's determinism tests (quick_test.go, parallel_test.go,
# faulttolerance_test.go) run with worker pools > 1 here, so -race exercises
# the concurrent Transfer/Combine/Map/Reduce paths for real data races.
set -eux

go vet ./...
go build ./...
go test -race ./...
